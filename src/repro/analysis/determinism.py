"""Determinism rules (DET family).

The simulated runtime promises that a run is a pure function of the seed
(:mod:`repro.runtime.sim`): ties are broken by scheduling order and every
random draw flows from a named stream of
:class:`repro.runtime.rng.SeedSequence`.  That promise dies the moment
protocol code reads the wall clock, asks the OS for entropy, or iterates
a hash-ordered ``set``, so these rules ban such constructs inside the
deterministic core — ``repro.runtime``, ``repro.sim``, ``repro.core``,
``repro.consensus`` and ``repro.transport``.

The live runtime (``repro.runtime.live``/``live_net``) is *by design*
wall-clock and OS-entropy territory: it maps the same protocol code onto
asyncio and UDP, where time is real.  It is carved out of the scope by
explicit rule configuration (``LIVE_RUNTIME_EXCLUDE``) rather than
``# repro: noqa`` comments — the whole module is outside the determinism
contract, and that decision belongs in one audited place, not scattered
per-line (docs/ANALYSIS.md, "Scope configuration").

Sanctioned escape hatches (a seeded ``random.Random`` at the simulation
boundary, the soft real-time pacer's injected wall clock) carry a
``# repro: noqa(DET...)`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.registry import Rule

__all__ = ["DETERMINISM_RULES"]

#: Packages whose behaviour must be a pure function of the seed.  The
#: runtime package is included so the deterministic substrate
#: (``repro.runtime.sim``, primitives, node, rng) stays patrolled.
DETERMINISTIC_SCOPE: Tuple[str, ...] = (
    "repro.runtime", "repro.sim", "repro.core", "repro.consensus",
    "repro.transport", "repro.membership", "repro.flow")

#: The live runtime legitimately uses the wall clock and real sockets;
#: the trailing ``*`` globs both ``repro.runtime.live`` and
#: ``repro.runtime.live_net``.
LIVE_RUNTIME_EXCLUDE: Tuple[str, ...] = ("repro.runtime.live*",)

_WALL_CLOCK_TIME = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "sleep", "localtime", "gmtime",
})
_WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})
_UUID_FNS = frozenset({"uuid1", "uuid4"})


def _attr_path(node: ast.AST) -> Tuple[str, ...]:
    """Flatten ``a.b.c`` into ``("a", "b", "c")`` (empty if not a chain)."""
    parts: list = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _imported_names(tree: ast.Module) -> Set[str]:
    """Top-level module names imported anywhere in the module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module:
            names.add(node.module.split(".")[0])
    return names


class WallClockRule(Rule):
    """DET001: wall-clock reads make runs irreproducible."""

    id = "DET001"
    name = "no-wall-clock"
    summary = ("reference to time.time/monotonic/sleep or datetime.now "
               "inside the deterministic core")
    rationale = ("Virtual time is the only clock of the model (Section 2; "
                 "kernel.py's determinism contract).  Real timestamps vary "
                 "run to run, breaking seed-reproducibility and the "
                 "trace-equivalence tests.")
    scope = DETERMINISTIC_SCOPE
    exclude = LIVE_RUNTIME_EXCLUDE

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if "time" not in _imported_names(ctx.tree) and \
                "datetime" not in _imported_names(ctx.tree):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            path = _attr_path(node)
            if len(path) < 2:
                continue
            if path[0] == "time" and path[-1] in _WALL_CLOCK_TIME:
                yield ctx.finding(
                    self.id, node,
                    f"wall-clock reference time.{path[-1]} — use virtual "
                    f"time (Simulator.now / yield <delay>) instead")
            elif path[0] == "datetime" and path[-1] in _WALL_CLOCK_DATETIME:
                yield ctx.finding(
                    self.id, node,
                    f"wall-clock reference datetime.{path[-1]} — use "
                    f"virtual time (Simulator.now) instead")


class UuidRule(Rule):
    """DET002: uuid1/uuid4 draw from the host, not the seed."""

    id = "DET002"
    name = "no-uuid"
    summary = "uuid.uuid1/uuid4 call inside the deterministic core"
    rationale = ("Message identity must be reproducible: ids are "
                 "(node, incarnation, seq) tuples (repro.core.ids), minted "
                 "from durably-logged counters — never host randomness.")
    scope = DETERMINISTIC_SCOPE
    exclude = LIVE_RUNTIME_EXCLUDE

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "uuid":
                for alias in node.names:
                    if alias.name in _UUID_FNS:
                        yield ctx.finding(
                            self.id, node,
                            f"import of uuid.{alias.name} — mint ids from "
                            f"seeded/durable counters instead")
            elif isinstance(node, ast.Attribute):
                path = _attr_path(node)
                if len(path) == 2 and path[0] == "uuid" \
                        and path[1] in _UUID_FNS:
                    yield ctx.finding(
                        self.id, node,
                        f"uuid.{path[1]} is host entropy — mint ids from "
                        f"seeded/durable counters instead")


class OsEntropyRule(Rule):
    """DET003: OS entropy sources are unseedable."""

    id = "DET003"
    name = "no-os-entropy"
    summary = ("os.urandom / secrets.* / random.SystemRandom inside the "
               "deterministic core")
    rationale = ("The kernel's reproducibility contract requires every "
                 "random draw to flow from SeedSequence streams; kernel "
                 "entropy cannot be replayed.")
    scope = DETERMINISTIC_SCOPE
    exclude = LIVE_RUNTIME_EXCLUDE

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "secrets":
                yield ctx.finding(
                    self.id, node, "import from secrets — OS entropy is "
                    "not reproducible; use SeedSequence streams")
            elif isinstance(node, ast.Attribute):
                path = _attr_path(node)
                if path[:2] == ("os", "urandom"):
                    yield ctx.finding(
                        self.id, node, "os.urandom is OS entropy — use "
                        "SeedSequence streams")
                elif path and path[0] == "secrets":
                    yield ctx.finding(
                        self.id, node, f"secrets.{path[-1]} is OS entropy "
                        f"— use SeedSequence streams")
                elif path[:2] == ("random", "SystemRandom"):
                    yield ctx.finding(
                        self.id, node, "random.SystemRandom is OS entropy "
                        "— use SeedSequence streams")


class GlobalRandomRule(Rule):
    """DET004: the module-level random API is shared, unseeded state."""

    id = "DET004"
    name = "no-global-random"
    summary = ("call through the module-level random API (random.random, "
               "random.choice, random.Random, ...) inside the "
               "deterministic core")
    rationale = ("Draws on the global Mersenne Twister couple unrelated "
                 "subsystems and are perturbed by any third-party import; "
                 "the only sanctioned randomness is a named stream from "
                 "SeedSequence.stream() (repro.sim.rng).  Even a seeded "
                 "random.Random(...) construction must be justified with "
                 "a noqa: it is the seed boundary.")
    scope = DETERMINISTIC_SCOPE
    exclude = LIVE_RUNTIME_EXCLUDE

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield ctx.finding(
                            self.id, node,
                            f"from random import {alias.name} — draw from "
                            f"a SeedSequence stream instead")
            elif isinstance(node, ast.Call):
                path = _attr_path(node.func)
                if len(path) == 2 and path[0] == "random" \
                        and path[1] != "SystemRandom":
                    yield ctx.finding(
                        self.id, node,
                        f"module-level random.{path[1]}(...) — draw from a "
                        f"named SeedSequence stream (or justify the seed "
                        f"boundary with a noqa)")


class SetIterationRule(Rule):
    """DET005: iterating a fresh set observes hash order."""

    id = "DET005"
    name = "no-unordered-set-iteration"
    summary = ("iteration directly over a set literal or set()/frozenset() "
               "call inside the deterministic core")
    rationale = ("Set iteration order follows the hash seed, not program "
                 "logic; with string payloads it varies across interpreter "
                 "invocations (PYTHONHASHSEED), so batches and message "
                 "fan-outs must iterate sorted() views — cf. the "
                 "deterministic batch-ordering rule of Section 4.2.")
    scope = DETERMINISTIC_SCOPE
    exclude = LIVE_RUNTIME_EXCLUDE

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters: list = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if isinstance(it, ast.Set):
                    yield ctx.finding(
                        self.id, it, "iteration over a set literal — wrap "
                        "in sorted() for a deterministic order")
                elif isinstance(it, ast.Call) and \
                        isinstance(it.func, ast.Name) and \
                        it.func.id in ("set", "frozenset"):
                    yield ctx.finding(
                        self.id, it,
                        f"iteration over {it.func.id}(...) — wrap in "
                        f"sorted() for a deterministic order")


_TAINT_SINK_RECEIVERS = ("endpoint", "network", "transport")
_TAINT_SEND_OPS = frozenset({"send", "multisend"})
_TAINT_SCHEDULE_OPS = frozenset({"schedule", "call_later", "call_at"})


def _is_taint_source(call: ast.Call) -> bool:
    """A call whose value is host randomness or the wall clock.

    Draws from *objects* (``self.rng.uniform(...)``) are deliberately
    not sources: DET004 polices unseeded stream construction, and a
    value drawn from a seeded stream is deterministic by contract.
    """
    path = _attr_path(call.func)
    if len(path) < 2:
        return False
    head, tail = path[0], path[-1]
    if head == "random" and tail not in ("Random", "SystemRandom"):
        return True
    if head == "time" and tail in _WALL_CLOCK_TIME:
        return True
    if head == "datetime" and tail in _WALL_CLOCK_DATETIME:
        return True
    if head == "uuid" and tail in _UUID_FNS:
        return True
    if path[:2] == ("os", "urandom") or head == "secrets":
        return True
    return False


class RandomnessTaintRule(Rule):
    """DET006: unseeded randomness must not reach payloads or deadlines."""

    id = "DET006"
    name = "no-tainted-payloads"
    summary = ("a value derived from the wall clock or unseeded "
               "randomness flows into a message send or a timer "
               "deadline")
    rationale = ("DET001/DET004 flag the draw itself inside the "
                 "deterministic core, but the chaos package may read "
                 "host state freely — what it must never do is let such "
                 "a value *escape* into a message payload or a scheduled "
                 "deadline, where it perturbs protocol behaviour outside "
                 "the seed's control and makes the failing trace "
                 "unreplayable.")
    scope = DETERMINISTIC_SCOPE + ("repro.chaos",)
    exclude = LIVE_RUNTIME_EXCLUDE

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        from repro.analysis.cfg import build_cfg
        from repro.analysis.dataflow import ForwardProblem, solve_forward

        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            cfg = build_cfg(node)

            rule = self

            class _Taint(ForwardProblem):
                def initial(self):
                    return frozenset()

                def join(self, left, right):
                    return left | right

                def transfer(self, cfg_node, state):
                    return rule._transfer(cfg_node, state)

            states = solve_forward(cfg, _Taint())
            for cfg_node in cfg.nodes:
                if cfg_node.index not in states:
                    continue
                yield from self._sinks(ctx, cfg_node,
                                       states[cfg_node.index])

    # -- dataflow ----------------------------------------------------------

    @staticmethod
    def _expr_tainted(expr: Optional[ast.AST], tainted: frozenset) -> bool:
        if expr is None:
            return False
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in tainted:
                return True
            if isinstance(node, ast.Call) and _is_taint_source(node):
                return True
        return False

    def _transfer(self, cfg_node, state: frozenset) -> frozenset:
        stmt = cfg_node.stmt
        if not isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            return state
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        else:
            targets, value = [stmt.target], stmt.value
        value_tainted = self._expr_tainted(value, state)
        if isinstance(stmt, ast.AugAssign):
            # x += tainted taints x; x += clean leaves x as it was.
            names = {stmt.target.id} if isinstance(stmt.target, ast.Name) \
                else set()
            return state | frozenset(names) if value_tainted else state
        names: set = set()
        for target in targets:
            elts = target.elts if isinstance(target, (ast.Tuple, ast.List)) \
                else [target]
            names.update(elt.id for elt in elts
                         if isinstance(elt, ast.Name))
        if value_tainted:
            return state | frozenset(names)
        return state - frozenset(names)

    # -- sinks -------------------------------------------------------------

    def _sinks(self, ctx: ModuleContext, cfg_node,
               tainted: frozenset) -> Iterator[Finding]:
        from repro.analysis.wal import _event_roots

        stmt = cfg_node.stmt
        if stmt is None or isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef,
                                             ast.ClassDef)):
            return
        # Compound headers contribute only their test/iterable — their
        # bodies are separate CFG nodes with their own in-states.
        roots = _event_roots(stmt)
        scan: List[ast.AST] = [stmt] if roots is None else list(roots)
        for root in scan:
            yield from self._sink_nodes(ctx, root, tainted)

    def _sink_nodes(self, ctx: ModuleContext, root: ast.AST,
                    tainted: frozenset) -> Iterator[Finding]:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                path = _attr_path(node.func)
                attr = path[-1] if path else ""
                receiver = path[:-1]
                if attr in _TAINT_SEND_OPS and \
                        any(part in _TAINT_SINK_RECEIVERS
                            for part in receiver):
                    for arg in node.args:
                        if self._expr_tainted(arg, tainted):
                            yield ctx.finding(
                                self.id, node,
                                "message payload derived from the wall "
                                "clock or unseeded randomness — the send "
                                "is unreplayable from the seed; derive "
                                "it from a named SeedSequence stream")
                            break
                elif attr in _TAINT_SCHEDULE_OPS and node.args and \
                        self._expr_tainted(node.args[0], tainted):
                    yield ctx.finding(
                        self.id, node,
                        "timer deadline derived from the wall clock or "
                        "unseeded randomness — schedule from virtual "
                        "time / a seeded stream instead")
            elif isinstance(node, ast.Yield) and \
                    self._expr_tainted(node.value, tainted):
                yield ctx.finding(
                    self.id, node,
                    "yielded delay derived from the wall clock or "
                    "unseeded randomness — the scheduler replays traces "
                    "by seed; draw the delay from a seeded stream")


DETERMINISM_RULES = (WallClockRule(), UuidRule(), OsEntropyRule(),
                     GlobalRandomRule(), SetIterationRule(),
                     RandomnessTaintRule())
