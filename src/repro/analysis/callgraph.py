"""Call resolution over the project symbol table.

The interprocedural rules walk statements and ask, for every
``ast.Call``, *which function body runs?*  Resolution is context
sensitive in the one dimension that matters for protocol classes: the
**concrete class** of ``self``.  A base-class method analyzed on behalf
of concrete class ``C`` resolves ``self.m()`` through ``C``'s MRO, so
the override that will actually run is the one analyzed — e.g.
``BasicAtomicBroadcast.on_start`` calling ``self._restore_volatile_state``
resolves to the ``Alternative`` override when the concrete class is
``AlternativeAtomicBroadcast``.

Resolved forms:

* ``self.m(...)`` — MRO of the concrete class;
* ``super().m(...)`` — MRO past the defining class;
* ``self.attr.m(...)`` — the attr's class inferred from ``__init__``
  annotations/constructions, *plus* every known subclass override
  (class-hierarchy fan-out: the harness may wire any concrete subtype,
  and abstract hooks like ``ConsensusService._activate`` only have
  bodies in subclasses);
* ``f(...)`` — a module-level function, local or imported;
* ``Cls.m(...)`` / ``mod.f(...)`` — explicit qualification.

Anything else is unknown, and callers treat it as opaque.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.symbols import ClassInfo, SymbolTable

__all__ = ["CallResolver", "ResolvedCall"]


class ResolvedCall:
    """One possible callee of a call site."""

    __slots__ = ("concrete", "defining", "func", "receiver")

    def __init__(self, concrete: Optional[ClassInfo],
                 defining: Optional[ClassInfo], func: ast.AST,
                 receiver: str):
        #: Concrete class for resolving further self-calls in the callee.
        self.concrete = concrete
        #: Class whose body defines the callee (anchor for super()).
        self.defining = defining
        self.func = func
        #: ``"self"`` when the callee runs on the caller's own object.
        self.receiver = receiver

    @property
    def name(self) -> str:
        owner = self.defining.name if self.defining else "<module>"
        return f"{owner}.{getattr(self.func, 'name', '?')}"

    def key(self) -> tuple:
        concrete = self.concrete.qualname if self.concrete else ""
        defining = self.defining.qualname if self.defining else ""
        return (concrete, defining, getattr(self.func, "name", ""))


class CallResolver:
    """Resolves call sites against a :class:`SymbolTable`."""

    def __init__(self, table: SymbolTable):
        self.table = table

    # -- public api --------------------------------------------------------

    def resolve(self, call: ast.Call, module: str,
                concrete: Optional[ClassInfo],
                defining: Optional[ClassInfo]) -> List[ResolvedCall]:
        """All known callees of ``call`` (empty when unresolvable)."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_bare(func.id, module, concrete)
        if not isinstance(func, ast.Attribute):
            return []
        method = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and concrete is not None:
                return self._method_target(concrete, method, "self")
            return self._resolve_qualified(receiver.id, method, module)
        if isinstance(receiver, ast.Call) and \
                isinstance(receiver.func, ast.Name) and \
                receiver.func.id == "super" and concrete is not None:
            after = defining.qualname if defining is not None else None
            found = self.table.find_method(concrete.qualname, method,
                                           after=after)
            if found is None:
                return []
            owner, body = found
            return [ResolvedCall(concrete, owner, body, "self")]
        if isinstance(receiver, ast.Attribute) and \
                isinstance(receiver.value, ast.Name) and \
                receiver.value.id == "self" and concrete is not None:
            return self._resolve_attr_call(concrete, receiver.attr, method,
                                           module)
        return []

    def method_refs(self, stmt: ast.stmt, module: str,
                    concrete: Optional[ClassInfo]
                    ) -> Iterator[ResolvedCall]:
        """Address-taken method references inside one statement.

        ``endpoint.register(T, self._on_gossip)`` passes ``self._on_gossip``
        without calling it; the registered handler is reachable the moment
        a message arrives, so reachability analyses must follow it.
        """
        call_funcs = {id(node.func) for node in ast.walk(stmt)
                      if isinstance(node, ast.Call)}
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Attribute) or id(node) in call_funcs:
                continue
            if isinstance(node.value, ast.Name) and \
                    node.value.id == "self" and concrete is not None:
                yield from self._method_target(concrete, node.attr, "self")
            elif isinstance(node.value, ast.Attribute) and \
                    isinstance(node.value.value, ast.Name) and \
                    node.value.value.id == "self" and concrete is not None:
                yield from self._resolve_attr_call(
                    concrete, node.value.attr, node.attr, module)

    # -- internals ---------------------------------------------------------

    def _method_target(self, concrete: ClassInfo, method: str,
                       receiver: str) -> List[ResolvedCall]:
        found = self.table.find_method(concrete.qualname, method)
        if found is None:
            return []
        owner, body = found
        return [ResolvedCall(concrete, owner, body, receiver)]

    def _attr_class(self, concrete: ClassInfo,
                    attr: str) -> Optional[ClassInfo]:
        for info in self.table.mro(concrete.qualname):
            declared = info.attr_types.get(attr)
            if declared:
                return self.table.resolve_name(info.module, declared)
        return None

    def _resolve_attr_call(self, concrete: ClassInfo, attr: str,
                           method: str, module: str) -> List[ResolvedCall]:
        declared = self._attr_class(concrete, attr)
        if declared is None:
            return []
        targets: List[ResolvedCall] = []
        seen = set()
        candidates = [declared] + self.table.subclasses(declared.qualname)
        for candidate in candidates:
            found = self.table.find_method(candidate.qualname, method)
            if found is None:
                continue
            owner, body = found
            resolved = ResolvedCall(candidate, owner, body, attr)
            if resolved.key() in seen:
                continue
            seen.add(resolved.key())
            targets.append(resolved)
        return targets

    def _resolve_bare(self, name: str, module: str,
                      concrete: Optional[ClassInfo]) -> List[ResolvedCall]:
        found = self.table.resolve_function(module, name)
        if found is not None:
            _, body = found
            return [ResolvedCall(None, None, body, "")]
        return []

    def _resolve_qualified(self, head: str, method: str,
                           module: str) -> List[ResolvedCall]:
        # ``Cls.m(...)`` — an explicit class-qualified call.
        info = self.table.resolve_name(module, head)
        if info is not None:
            return self._method_target(info, method, "")
        # ``mod.f(...)`` — a function through an imported module.
        symbols = self.table.modules.get(module)
        if symbols is None:
            return []
        target = symbols.imports.get(head)
        if target is not None:
            other = self.table.modules.get(target)
            if other is not None and method in other.functions:
                return [ResolvedCall(None, None, other.functions[method],
                                     "")]
        return []
