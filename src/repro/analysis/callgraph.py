"""Call resolution over the project symbol table.

The interprocedural rules walk statements and ask, for every
``ast.Call``, *which function body runs?*  Resolution is context
sensitive in the one dimension that matters for protocol classes: the
**concrete class** of ``self``.  A base-class method analyzed on behalf
of concrete class ``C`` resolves ``self.m()`` through ``C``'s MRO, so
the override that will actually run is the one analyzed — e.g.
``BasicAtomicBroadcast.on_start`` calling ``self._restore_volatile_state``
resolves to the ``Alternative`` override when the concrete class is
``AlternativeAtomicBroadcast``.

Resolved forms:

* ``self.m(...)`` — MRO of the concrete class;
* ``super().m(...)`` — MRO past the defining class;
* ``self.attr.m(...)`` — the attr's class inferred from ``__init__``
  annotations/constructions, *plus* every known subclass override
  (class-hierarchy fan-out: the harness may wire any concrete subtype,
  and abstract hooks like ``ConsensusService._activate`` only have
  bodies in subclasses);
* ``f(...)`` — a module-level function, local or imported;
* ``Cls.m(...)`` / ``mod.f(...)`` — explicit qualification.

Anything else is unknown, and callers treat it as opaque.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.cfg import scoped_walk
from repro.analysis.symbols import ClassInfo, SymbolTable

__all__ = ["CallResolver", "FieldWriteSummary", "ResolvedCall",
           "value_sources"]

# Builtins whose result is a pure function of their arguments' values —
# the value "flows through" them for derivation purposes.  Deliberately
# value-preserving only: an opaque call produces a *new* value, breaking
# the derivation chain.
_VALUE_PRESERVING = frozenset({
    "abs", "bool", "dict", "float", "frozenset", "int", "len", "list",
    "max", "min", "round", "set", "sorted", "str", "sum", "tuple",
})


class ResolvedCall:
    """One possible callee of a call site."""

    __slots__ = ("concrete", "defining", "func", "receiver")

    def __init__(self, concrete: Optional[ClassInfo],
                 defining: Optional[ClassInfo], func: ast.AST,
                 receiver: str):
        #: Concrete class for resolving further self-calls in the callee.
        self.concrete = concrete
        #: Class whose body defines the callee (anchor for super()).
        self.defining = defining
        self.func = func
        #: ``"self"`` when the callee runs on the caller's own object.
        self.receiver = receiver

    @property
    def name(self) -> str:
        owner = self.defining.name if self.defining else "<module>"
        return f"{owner}.{getattr(self.func, 'name', '?')}"

    def key(self) -> tuple:
        concrete = self.concrete.qualname if self.concrete else ""
        defining = self.defining.qualname if self.defining else ""
        return (concrete, defining, getattr(self.func, "name", ""))


def value_sources(expr: Optional[ast.AST]
                  ) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """``(names, self_fields)`` the expression's *value* derives from.

    Follows value-preserving operators (arithmetic, comparisons,
    subscripts, tuple/list/set displays, conditional expressions) and
    the pure coercion builtins, but stops at opaque calls: ``f(x)``
    returns a fresh value even though ``x`` went in.  This is the
    derivation notion the concurrency rules share — "is this expression
    still the stale thing I read earlier?"
    """
    if expr is None:
        return frozenset(), frozenset()
    names: set = set()
    fields: set = set()

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            field = _attr_root_field(node)
            if field is not None:
                fields.add(field)  # self.f / self.f.total — field f
            else:
                head: ast.AST = node
                while isinstance(head, ast.Attribute):
                    head = head.value
                if isinstance(head, ast.Name):
                    names.add(head.id)  # msg.k — derived from msg
        elif isinstance(node, ast.BinOp):
            visit(node.left), visit(node.right)
        elif isinstance(node, ast.UnaryOp):
            visit(node.operand)
        elif isinstance(node, ast.BoolOp):
            for value in node.values:
                visit(value)
        elif isinstance(node, ast.Compare):
            visit(node.left)
            for comparator in node.comparators:
                visit(comparator)
        elif isinstance(node, ast.Subscript):
            visit(node.value), visit(node.slice)
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                visit(elt)
        elif isinstance(node, ast.IfExp):
            visit(node.body), visit(node.orelse)
        elif isinstance(node, ast.Starred):
            visit(node.value)
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and \
                    node.func.id in _VALUE_PRESERVING:
                for arg in node.args:
                    visit(arg)
        # Anything else (constants, comprehensions, opaque calls,
        # lambdas) contributes no sources.

    visit(expr)
    return frozenset(names), frozenset(fields)


def _attr_root_field(node: ast.Attribute) -> Optional[str]:
    """The field name of a ``self.f[...attrs...]`` chain, if any."""
    current: ast.AST = node
    field = None
    while isinstance(current, ast.Attribute):
        field = current.attr
        current = current.value
    if isinstance(current, ast.Name) and current.id == "self":
        return field
    return None


class FieldWriteSummary:
    """What one callee does to ``self`` fields, per parameter.

    ``fields`` is every field the function writes at all;
    ``param_fields[p]`` is the subset whose new value is directly
    derived (per :func:`value_sources`) from parameter ``p``.  The
    atomicity rule uses this to follow a stale local through a helper
    call into the field it finally lands in.
    """

    __slots__ = ("fields", "param_fields", "params")

    def __init__(self, params: Tuple[str, ...],
                 fields: FrozenSet[str],
                 param_fields: Dict[str, FrozenSet[str]]):
        self.params = params
        self.fields = fields
        self.param_fields = param_fields


def _summarize_field_writes(func: ast.AST) -> FieldWriteSummary:
    args = getattr(func, "args", None)
    params: Tuple[str, ...] = ()
    if args is not None:
        names = [arg.arg for arg in args.args if arg.arg != "self"]
        names += [arg.arg for arg in args.kwonlyargs]
        params = tuple(names)
    fields: set = set()
    param_fields: Dict[str, set] = {}

    def record(target: ast.AST, value: Optional[ast.AST]) -> None:
        field = None
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                field = target.attr
        elif isinstance(target, ast.Subscript):
            field = _attr_root_field(target.value) \
                if isinstance(target.value, ast.Attribute) else None
        if field is None:
            return
        fields.add(field)
        names, _ = value_sources(value)
        for name in names:
            if name in params:
                param_fields.setdefault(name, set()).add(field)

    for node in scoped_walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, node.value)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            record(node.target, node.value)
    return FieldWriteSummary(
        params, frozenset(fields),
        {name: frozenset(found) for name, found in param_fields.items()})


class CallResolver:
    """Resolves call sites against a :class:`SymbolTable`."""

    def __init__(self, table: SymbolTable):
        self.table = table
        self._field_summaries: Dict[int, FieldWriteSummary] = {}

    def field_summary(self, func: ast.AST) -> FieldWriteSummary:
        """Cached per-function field-write summary (see
        :class:`FieldWriteSummary`)."""
        cached = self._field_summaries.get(id(func))
        if cached is None:
            cached = _summarize_field_writes(func)
            self._field_summaries[id(func)] = cached
        return cached

    # -- public api --------------------------------------------------------

    def resolve(self, call: ast.Call, module: str,
                concrete: Optional[ClassInfo],
                defining: Optional[ClassInfo]) -> List[ResolvedCall]:
        """All known callees of ``call`` (empty when unresolvable)."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_bare(func.id, module, concrete)
        if not isinstance(func, ast.Attribute):
            return []
        method = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and concrete is not None:
                return self._method_target(concrete, method, "self")
            return self._resolve_qualified(receiver.id, method, module)
        if isinstance(receiver, ast.Call) and \
                isinstance(receiver.func, ast.Name) and \
                receiver.func.id == "super" and concrete is not None:
            after = defining.qualname if defining is not None else None
            found = self.table.find_method(concrete.qualname, method,
                                           after=after)
            if found is None:
                return []
            owner, body = found
            return [ResolvedCall(concrete, owner, body, "self")]
        if isinstance(receiver, ast.Attribute) and \
                isinstance(receiver.value, ast.Name) and \
                receiver.value.id == "self" and concrete is not None:
            return self._resolve_attr_call(concrete, receiver.attr, method,
                                           module)
        return []

    def method_refs(self, stmt: ast.stmt, module: str,
                    concrete: Optional[ClassInfo]
                    ) -> Iterator[ResolvedCall]:
        """Address-taken method references inside one statement.

        ``endpoint.register(T, self._on_gossip)`` passes ``self._on_gossip``
        without calling it; the registered handler is reachable the moment
        a message arrives, so reachability analyses must follow it.
        """
        call_funcs = {id(node.func) for node in ast.walk(stmt)
                      if isinstance(node, ast.Call)}
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Attribute) or id(node) in call_funcs:
                continue
            if isinstance(node.value, ast.Name) and \
                    node.value.id == "self" and concrete is not None:
                yield from self._method_target(concrete, node.attr, "self")
            elif isinstance(node.value, ast.Attribute) and \
                    isinstance(node.value.value, ast.Name) and \
                    node.value.value.id == "self" and concrete is not None:
                yield from self._resolve_attr_call(
                    concrete, node.value.attr, node.attr, module)

    # -- internals ---------------------------------------------------------

    def _method_target(self, concrete: ClassInfo, method: str,
                       receiver: str) -> List[ResolvedCall]:
        found = self.table.find_method(concrete.qualname, method)
        if found is None:
            return []
        owner, body = found
        return [ResolvedCall(concrete, owner, body, receiver)]

    def _attr_class(self, concrete: ClassInfo,
                    attr: str) -> Optional[ClassInfo]:
        for info in self.table.mro(concrete.qualname):
            declared = info.attr_types.get(attr)
            if declared:
                return self.table.resolve_name(info.module, declared)
        return None

    def _resolve_attr_call(self, concrete: ClassInfo, attr: str,
                           method: str, module: str) -> List[ResolvedCall]:
        declared = self._attr_class(concrete, attr)
        if declared is None:
            return []
        targets: List[ResolvedCall] = []
        seen: set = set()
        candidates = [declared] + self.table.subclasses(declared.qualname)
        for candidate in candidates:
            found = self.table.find_method(candidate.qualname, method)
            if found is None:
                continue
            owner, body = found
            resolved = ResolvedCall(candidate, owner, body, attr)
            if resolved.key() in seen:
                continue
            seen.add(resolved.key())
            targets.append(resolved)
        return targets

    def _resolve_bare(self, name: str, module: str,
                      concrete: Optional[ClassInfo]) -> List[ResolvedCall]:
        found = self.table.resolve_function(module, name)
        if found is not None:
            _, body = found
            return [ResolvedCall(None, None, body, "")]
        return []

    def _resolve_qualified(self, head: str, method: str,
                           module: str) -> List[ResolvedCall]:
        # ``Cls.m(...)`` — an explicit class-qualified call.
        info = self.table.resolve_name(module, head)
        if info is not None:
            return self._method_target(info, method, "")
        # ``mod.f(...)`` — a function through an imported module.
        symbols = self.table.modules.get(module)
        if symbols is None:
            return []
        target = symbols.imports.get(head)
        if target is not None:
            other = self.table.modules.get(target)
            if other is not None and method in other.functions:
                return [ResolvedCall(None, None, other.functions[method],
                                     "")]
        return []
