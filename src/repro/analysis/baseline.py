"""Baseline snapshots: adopt a tree's current findings, report only new ones.

``repro lint --write-baseline lint-baseline.json`` records every current
finding as *accepted debt*; a later ``repro lint --baseline
lint-baseline.json`` run subtracts the recorded findings and fails only
on regressions.  This lets the lint gate go strict on a tree that is
not yet clean, without freezing line numbers: a finding is matched by
its **fingerprint** — ``(path, rule, message pattern)`` with every
number in the message replaced by ``#`` — so renumbering edits (the
overwhelming majority of churn) don't resurrect baselined findings,
while a genuinely new instance of the same rule in the same file is
caught once the recorded count is exhausted.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Tuple

from repro.analysis.engine import Finding, Report
from repro.errors import AnalysisError

__all__ = ["fingerprint", "filter_baselined", "load_baseline",
           "write_baseline"]

_VERSION = 1
_NUMBERS = re.compile(r"\d+")

Fingerprint = Tuple[str, str, str]


def fingerprint(finding: Finding) -> Fingerprint:
    """Stable identity for a finding across unrelated edits."""
    return (finding.path.replace("\\", "/"), finding.rule_id,
            _NUMBERS.sub("#", finding.message))


def write_baseline(report: Report) -> str:
    """Serialize ``report``'s findings as a baseline document."""
    counts: Dict[Fingerprint, int] = {}
    for finding in report.findings:
        key = fingerprint(finding)
        counts[key] = counts.get(key, 0) + 1
    entries = [{"path": path, "rule": rule, "message_pattern": pattern,
                "count": count}
               for (path, rule, pattern), count in sorted(counts.items())]
    return json.dumps({"version": _VERSION, "entries": entries},
                      indent=2) + "\n"


def load_baseline(text: str, *, source: str = "<baseline>"
                  ) -> Dict[Fingerprint, int]:
    """Parse a baseline document into fingerprint counts."""
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise AnalysisError(f"{source}: not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or \
            document.get("version") != _VERSION:
        raise AnalysisError(
            f"{source}: not a lint baseline (expected version {_VERSION})")
    counts: Dict[Fingerprint, int] = {}
    for entry in document.get("entries", []):
        try:
            key = (str(entry["path"]), str(entry["rule"]),
                   str(entry["message_pattern"]))
            counts[key] = counts.get(key, 0) + int(entry["count"])
        except (TypeError, KeyError) as exc:
            raise AnalysisError(
                f"{source}: malformed baseline entry: {entry!r}") from exc
    return counts


def filter_baselined(report: Report,
                     baseline: Dict[Fingerprint, int]) -> Report:
    """Drop findings covered by ``baseline``; keep regressions.

    Findings are consumed in report order (sorted by location), so when
    the tree has *more* instances of a fingerprint than the baseline
    recorded, the surplus — the regression — is reported, whichever of
    them is textually "new".
    """
    remaining = dict(baseline)
    fresh: List[Finding] = []
    for finding in report.findings:
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return Report(fresh, report.files_analyzed)
