"""The ``repro lint`` entry point (also ``python -m repro.analysis``).

Exit status contract (relied on by CI and the self-check test):

* ``0`` — analyzed cleanly, no violations;
* ``1`` — violations found (each printed as ``path:line:col: RULE ...``);
* ``2`` — the analyzer itself could not run (bad path, unparseable file),
  reported as a clean one-line message, never a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.baseline import (filter_baselined, load_baseline,
                                     write_baseline)
from repro.analysis.diffs import changed_lines, filter_report
from repro.analysis.engine import analyze_paths
from repro.analysis.registry import default_registry
from repro.analysis.reporters import (format_json, format_rule_listing,
                                      format_sarif, format_text)
from repro.errors import AnalysisError

__all__ = ["add_lint_arguments", "execute_lint", "main", "parse_jobs"]


def parse_jobs(value: str) -> int:
    """``--jobs`` values: a positive integer, or ``auto`` (one per CPU)."""
    if value == "auto":
        return os.cpu_count() or 1
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}")
    return jobs


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``lint`` arguments on ``parser``."""
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text", dest="output_format",
                        help="report format (default: text)")
    parser.add_argument("--diff", metavar="BASE", default=None,
                        help="report only findings on lines changed "
                             "since the given git ref (the whole tree is "
                             "still analyzed)")
    parser.add_argument("--jobs", metavar="N", type=parse_jobs, default=1,
                        help="worker processes for the per-file rules "
                             "(N or 'auto'; default: 1, serial — output "
                             "is identical either way)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="subtract the findings recorded in FILE "
                             "(see --write-baseline); fail only on "
                             "regressions")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="record the current findings as accepted "
                             "debt in FILE and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--emit-msgflow", metavar="FILE", default=None,
                        dest="emit_msgflow",
                        help="write the sender→type→handler message-flow "
                             "graph to FILE (.dot → Graphviz, anything "
                             "else → JSON) in addition to the report")


def execute_lint(paths: List[str], output_format: str = "text",
                 list_rules: bool = False,
                 diff_base: Optional[str] = None,
                 jobs: int = 1,
                 baseline_path: Optional[str] = None,
                 write_baseline_path: Optional[str] = None,
                 emit_msgflow_path: Optional[str] = None) -> int:
    """Run the analyzer; print a report; return the process exit status."""
    registry = default_registry()
    if list_rules:
        print(format_rule_listing(registry.rules()))
        return 0
    report = analyze_paths(paths, jobs=jobs)
    if emit_msgflow_path is not None:
        from repro.analysis.msgflow import write_msgflow
        graph = write_msgflow(paths, emit_msgflow_path)
        print(f"msgflow: {graph.summary()} -> {emit_msgflow_path}")
    if diff_base is not None:
        report = filter_report(report, changed_lines(diff_base))
    if write_baseline_path is not None:
        with open(write_baseline_path, "w", encoding="utf-8") as handle:
            handle.write(write_baseline(report))
        print(f"baseline: recorded {len(report.findings)} finding(s) "
              f"in {write_baseline_path}")
        return 0
    if baseline_path is not None:
        try:
            with open(baseline_path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise AnalysisError(
                f"cannot read baseline {baseline_path!r}: {exc}") from exc
        report = filter_baselined(
            report, load_baseline(text, source=baseline_path))
    if output_format == "json":
        print(format_json(report))
    elif output_format == "sarif":
        print(format_sarif(report, registry.rules()))
    else:
        print(format_text(report))
    return 1 if report.findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone CLI (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="protocol-aware static analysis: determinism, "
                    "write-ahead-logging, recovery-completeness, "
                    "concurrency-atomicity and sim-coroutine lints")
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return execute_lint(args.paths, args.output_format, args.list_rules,
                            args.diff, args.jobs, args.baseline,
                            args.write_baseline, args.emit_msgflow)
    except AnalysisError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
