"""The ``repro lint`` entry point (also ``python -m repro.analysis``).

Exit status contract (relied on by CI and the self-check test):

* ``0`` — analyzed cleanly, no violations;
* ``1`` — violations found (each printed as ``path:line:col: RULE ...``);
* ``2`` — the analyzer itself could not run (bad path, unparseable file),
  reported as a clean one-line message, never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.diffs import changed_lines, filter_report
from repro.analysis.engine import analyze_paths
from repro.analysis.registry import default_registry
from repro.analysis.reporters import (format_json, format_rule_listing,
                                      format_sarif, format_text)
from repro.errors import AnalysisError

__all__ = ["add_lint_arguments", "execute_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``lint`` arguments on ``parser``."""
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text", dest="output_format",
                        help="report format (default: text)")
    parser.add_argument("--diff", metavar="BASE", default=None,
                        help="report only findings on lines changed "
                             "since the given git ref (the whole tree is "
                             "still analyzed)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")


def execute_lint(paths: List[str], output_format: str = "text",
                 list_rules: bool = False,
                 diff_base: Optional[str] = None) -> int:
    """Run the analyzer; print a report; return the process exit status."""
    registry = default_registry()
    if list_rules:
        print(format_rule_listing(registry.rules()))
        return 0
    report = analyze_paths(paths, registry=registry)
    if diff_base is not None:
        report = filter_report(report, changed_lines(diff_base))
    if output_format == "json":
        print(format_json(report))
    elif output_format == "sarif":
        print(format_sarif(report, registry.rules()))
    else:
        print(format_text(report))
    return 1 if report.findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone CLI (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="protocol-aware static analysis: determinism, "
                    "write-ahead-logging, recovery-completeness and "
                    "sim-coroutine lints")
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return execute_lint(args.paths, args.output_format, args.list_rules,
                            args.diff)
    except AnalysisError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
