"""Generic forward dataflow solving over :mod:`repro.analysis.cfg` graphs.

A rule supplies a :class:`ForwardProblem` — an initial state, a transfer
function and a join — and :func:`solve_forward` iterates a worklist to a
fixpoint.  States must be immutable values with structural equality
(frozensets, tuples of frozensets); the solver never mutates them.

Termination is the problem's responsibility: transfer and join must be
monotone over a finite lattice.  Every rule in this package uses
frozensets drawn from the finite universe of one function's fields,
names and line numbers, so chains are trivially finite.

The solver returns the fixpoint *in*-state of every node.  Rules then
make one final pass over the nodes, re-running their transfer with the
converged states to emit findings — emitting during the fixpoint
iterations would report on transient, not-yet-converged states.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.analysis.cfg import CFG, CFGNode

__all__ = ["ForwardProblem", "SetUnionProblem", "solve_forward"]


class ForwardProblem:
    """Interface a dataflow client implements."""

    def initial(self) -> Any:
        """State on entry to the function."""
        raise NotImplementedError  # pragma: no cover

    def transfer(self, node: CFGNode, state: Any) -> Any:
        """State after executing ``node`` from ``state``."""
        raise NotImplementedError  # pragma: no cover

    def join(self, left: Any, right: Any) -> Any:
        """Merge states at a control-flow confluence."""
        raise NotImplementedError  # pragma: no cover


class SetUnionProblem(ForwardProblem):
    """The common may-analysis shape: a frozenset state, union join.

    Subclasses implement only :meth:`transfer`.  Monotonicity holds as
    long as transfer never removes facts it did not itself introduce for
    a *stronger* reason (e.g. a rebind killing stale entries for the
    rebound name) — the standard gen/kill discipline.
    """

    def initial(self) -> Any:
        return frozenset()

    def join(self, left: Any, right: Any) -> Any:
        return left | right


def solve_forward(cfg: CFG, problem: ForwardProblem) -> Dict[int, Any]:
    """Fixpoint in-states, keyed by ``CFGNode.index``.

    Nodes never reached from entry (e.g. code after ``while True`` with
    no break) are absent from the result.
    """
    in_states: Dict[int, Any] = {cfg.entry.index: problem.initial()}
    worklist = [cfg.entry]
    while worklist:
        node = worklist.pop()
        out = problem.transfer(node, in_states[node.index])
        for succ in node.succs:
            if succ.index in in_states:
                merged = problem.join(in_states[succ.index], out)
                if merged == in_states[succ.index]:
                    continue
                in_states[succ.index] = merged
            else:
                in_states[succ.index] = out
            worklist.append(succ)
    return in_states
