"""Yield-point atomicity rules (ATM family).

The DES kernel (and LiveRuntime) interleave tasks only at scheduling
boundaries — ``yield``/``await`` and their async-header spellings.  The
paper's protocol steps are written assuming each handler/step is atomic
between boundaries; these rules flag code where that assumption is
silently load-bearing:

* **ATM001 — interrupted read-modify-write.**  A local is derived from
  ``self.<field>``, a scheduling boundary intervenes, and the *same*
  field is then written from the stale local.  Another task can update
  the field inside the window and its update is lost.  The check is
  flow-sensitive (a forward dataflow over the per-function CFG tracks
  which locals are live-across-boundary, per source field) and follows
  one level of helper calls through the call graph's field-write
  summaries (``self._note(stale)`` where ``_note`` stores its parameter
  into the field).
* **ATM002 — boundary inside a write barrier.**  A ``with
  ...write_barrier():`` section contains a ``yield``/``await``.  The
  barrier exists to make a batch of storage writes atomic; yielding
  mid-section lets other tasks — and the chaos engine's crash points —
  observe the half-written batch.

Both rules treat every boundary kind the same (``yield``, ``await``,
``asyncio.gather``, ``async for``/``async with`` headers): they are all
points where the scheduler may run somebody else.
"""

from __future__ import annotations

import ast
from typing import (Dict, FrozenSet, Iterator, List, Optional, Sequence,
                    Tuple)

from repro.analysis.cfg import (CFGNode, build_cfg, scoped_walk,
                                stmt_roots)
from repro.analysis.callgraph import value_sources
from repro.analysis.dataflow import SetUnionProblem, solve_forward
from repro.analysis.engine import Finding, ModuleContext, ProjectContext
from repro.analysis.registry import Rule
from repro.analysis.symbols import ClassInfo

__all__ = ["ATOMICITY_RULES", "AwaitHoldingBarrierRule",
           "InterruptedReadModifyWriteRule"]

_CONCURRENT_SCOPE = ("repro.core", "repro.consensus", "repro.quorum",
                     "repro.multigroup", "repro.fdetect", "repro.apps",
                     "repro.baselines", "repro.transport", "repro.membership",
                     "repro.flow")

#: Methods that mutate a builtin container in place.
_MUTATORS = frozenset({
    "append", "add", "update", "extend", "insert", "setdefault", "pop",
    "popleft", "appendleft", "remove", "discard", "clear",
})

# -- shared AST helpers -------------------------------------------------------


def _attr_path(node: ast.AST) -> Tuple[str, ...]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _self_field(node: ast.AST) -> Optional[str]:
    """``self.f`` -> ``"f"`` (exactly one level deep)."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _written_field(target: ast.AST) -> Optional[str]:
    """The self-field a store target writes (``self.f``, ``self.f[k]``)."""
    field = _self_field(target)
    if field is not None:
        return field
    if isinstance(target, ast.Subscript):
        return _self_field(target.value)
    return None


def _load_names(expr: Optional[ast.AST]) -> FrozenSet[str]:
    """Every Name loaded anywhere under ``expr`` (broad, unlike the
    value-preserving derivation of :func:`value_sources`): on the write
    side, a stale local reaching the new value *through* an opaque call
    still makes the write depend on the stale read."""
    if expr is None:
        return frozenset()
    return frozenset(node.id for node in ast.walk(expr)
                     if isinstance(node, ast.Name))


# -- ATM001 -------------------------------------------------------------------

# One dataflow fact: local ``name`` holds a value derived from
# ``self.field``, read on ``line``; ``crossed`` flips once a scheduling
# boundary has intervened since the read.
_Entry = Tuple[str, str, int, bool]


class _Event:
    """One thing a statement does, in evaluation order."""

    __slots__ = ("kind", "name", "fields", "names", "node", "call")

    def __init__(self, kind: str, name: str = "",
                 fields: FrozenSet[str] = frozenset(),
                 names: FrozenSet[str] = frozenset(),
                 node: Optional[ast.AST] = None,
                 call: Optional[ast.Call] = None):
        self.kind = kind      # "bind" | "write" | "call"
        self.name = name      # bind: the local bound
        self.fields = fields  # bind: source fields; write: {written field}
        self.names = names    # write: names the new value depends on
        self.node = node
        self.call = call


def _bind_events(targets: Sequence[ast.AST],
                 value: Optional[ast.AST],
                 stmt: ast.AST) -> List[_Event]:
    events: List[_Event] = []
    for target in targets:
        if isinstance(target, ast.Name):
            _, fields = value_sources(value)
            events.append(_Event("bind", name=target.id, fields=fields,
                                 node=stmt))
        elif isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple) \
                and len(target.elts) == len(value.elts):
            for elt, sub in zip(target.elts, value.elts):
                events.extend(_bind_events([elt], sub, stmt))
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:
                events.extend(_bind_events([elt], value, stmt))
    return events


def _node_events(stmt: ast.AST) -> List[_Event]:
    """Events of one CFG node's statement, in evaluation order.

    Only the statement's *own* roots are scanned (a compound header owns
    its test/iterable, not its body — body statements are separate CFG
    nodes with their own events).
    """
    events: List[_Event] = []
    roots = stmt_roots(stmt)
    # Helper calls anywhere in the statement run before the store.
    for root in roots:
        for node in scoped_walk(root):
            if isinstance(node, ast.Call) and \
                    _attr_path(node.func)[:1] == ("self",) and \
                    len(_attr_path(node.func)) == 2:
                events.append(_Event("call", call=node))
    if isinstance(stmt, ast.Assign):
        write_targets = [t for t in stmt.targets
                         if _written_field(t) is not None]
        for target in write_targets:
            field = _written_field(target)
            assert field is not None
            events.append(_Event("write", fields=frozenset({field}),
                                 names=_load_names(stmt.value), node=stmt))
        events.extend(_bind_events(
            [t for t in stmt.targets if t not in write_targets],
            stmt.value, stmt))
    elif isinstance(stmt, ast.AnnAssign):
        field = _written_field(stmt.target)
        if field is not None:
            events.append(_Event("write", fields=frozenset({field}),
                                 names=_load_names(stmt.value), node=stmt))
        elif isinstance(stmt.target, ast.Name) and stmt.value is not None:
            events.extend(_bind_events([stmt.target], stmt.value, stmt))
    elif isinstance(stmt, ast.AugAssign):
        field = _written_field(stmt.target)
        if field is not None:
            events.append(_Event("write", fields=frozenset({field}),
                                 names=_load_names(stmt.value), node=stmt))
    else:
        # In-place mutation of a field container: self.f.append(x).
        for root in roots:
            for node in scoped_walk(root):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in _MUTATORS:
                    field = _self_field(node.func.value)
                    if field is not None:
                        names = frozenset().union(
                            *(_load_names(arg) for arg in node.args)) \
                            if node.args else frozenset()
                        events.append(_Event("write",
                                             fields=frozenset({field}),
                                             names=names, node=node))
    return events


class _Atm001Problem(SetUnionProblem):
    """State: frozenset of :data:`_Entry` facts."""

    def __init__(self, events: Dict[int, List[_Event]]):
        self.events = events

    def transfer(self, node: CFGNode, state):
        if node.is_boundary:
            state = frozenset((name, field, line, True)
                              for name, field, line, _ in state)
        for event in self.events.get(node.index, ()):
            if event.kind != "bind":
                continue
            state = frozenset(entry for entry in state
                              if entry[0] != event.name)
            line = getattr(event.node, "lineno", 0)
            state = state | {(event.name, field, line, False)
                             for field in event.fields}
        return state


class InterruptedReadModifyWriteRule(Rule):
    """ATM001: no yield between a field read and its dependent write."""

    id = "ATM001"
    name = "interrupted-read-modify-write"
    summary = ("a self-field is written from a local that was read from "
               "the same field before a scheduling boundary")
    rationale = ("The paper's steps are atomic between yields; a "
                 "read-modify-write spanning a boundary lets a "
                 "concurrent task's update to the field be silently "
                 "overwritten with stale state.")
    scope = _CONCURRENT_SCOPE
    requires_project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.in_scope(self):
            symbols = project.symbols.modules.get(ctx.module)
            if symbols is None:
                continue
            for info in symbols.classes.values():
                for func in info.methods.values():
                    yield from self._check_method(project, ctx, info, func)

    def _check_method(self, project: ProjectContext, ctx: ModuleContext,
                      info: ClassInfo, func: ast.AST) -> Iterator[Finding]:
        cfg = build_cfg(func)
        if not any(node.is_boundary for node in cfg.nodes):
            return
        events = {node.index: _node_events(node.stmt)
                  for node in cfg.nodes if node.stmt is not None}
        in_states = solve_forward(cfg, _Atm001Problem(events))
        seen: set = set()
        for node in cfg.nodes:
            if node.index not in in_states:
                continue  # unreachable
            state = in_states[node.index]
            if node.is_boundary:
                state = frozenset((name, field, line, True)
                                  for name, field, line, _ in state)
            for event in events.get(node.index, ()):
                if event.kind == "write":
                    yield from self._check_write(ctx, func, event, state,
                                                 seen)
                elif event.kind == "call":
                    yield from self._check_call(project, ctx, info, func,
                                                event, state, seen)
                elif event.kind == "bind":
                    line = getattr(event.node, "lineno", 0)
                    state = frozenset(e for e in state
                                      if e[0] != event.name)
                    state = state | {(event.name, field, line, False)
                                     for field in event.fields}

    def _check_write(self, ctx: ModuleContext, func: ast.AST,
                     event: _Event, state, seen) -> Iterator[Finding]:
        for name, field, line, crossed in sorted(state):
            if not crossed or field not in event.fields or \
                    name not in event.names:
                continue
            position = (getattr(event.node, "lineno", 0),
                        getattr(event.node, "col_offset", 0))
            if position in seen:
                continue
            seen.add(position)
            assert event.node is not None
            yield ctx.finding(
                self.id, event.node,
                f"interrupted read-modify-write of self.{field} in "
                f"{getattr(func, 'name', '?')}: {name!r} was derived "
                f"from it on line {line}, but a scheduling boundary "
                f"intervenes before this write — a concurrent task's "
                f"update to {field} would be overwritten; re-read the "
                f"field after the boundary (or write before yielding)")

    def _check_call(self, project: ProjectContext, ctx: ModuleContext,
                    info: ClassInfo, func: ast.AST, event: _Event,
                    state, seen) -> Iterator[Finding]:
        call = event.call
        assert call is not None
        resolver = project.resolver
        for target in resolver.resolve(call, info.module, info, info):
            summary = resolver.field_summary(target.func)
            pairs = list(zip(summary.params, call.args))
            pairs += [(kw.arg, kw.value) for kw in call.keywords
                      if kw.arg is not None]
            for param, arg in pairs:
                if not isinstance(arg, ast.Name) or param is None:
                    continue
                into = summary.param_fields.get(param, frozenset())
                for name, field, line, crossed in sorted(state):
                    if not crossed or name != arg.id or field not in into:
                        continue
                    position = (call.lineno, call.col_offset)
                    if position in seen:
                        continue
                    seen.add(position)
                    yield ctx.finding(
                        self.id, call,
                        f"interrupted read-modify-write of self.{field}"
                        f" via {target.name}: {name!r} was derived from "
                        f"it on line {line} and crosses a scheduling "
                        f"boundary before the helper stores it back — "
                        f"a concurrent update to {field} would be lost")


# -- ATM002 -------------------------------------------------------------------


class AwaitHoldingBarrierRule(Rule):
    """ATM002: no scheduling boundary inside a write_barrier section."""

    id = "ATM002"
    name = "boundary-inside-write-barrier"
    summary = ("a with write_barrier() section contains a scheduling "
               "boundary (yield/await)")
    rationale = ("The write barrier groups storage writes into one "
                 "atomic commit; yielding mid-section lets other tasks "
                 "and crash injection observe the half-written batch, "
                 "which is exactly what the barrier exists to prevent.")
    scope = _CONCURRENT_SCOPE + ("repro.storage", "repro.harness")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for stmt in ast.walk(ctx.tree):
            if not isinstance(stmt, (ast.With, ast.AsyncWith)):
                continue
            if not any(isinstance(item.context_expr, ast.Call) and
                       _attr_path(item.context_expr.func)[-1:] ==
                       ("write_barrier",)
                       for item in stmt.items):
                continue
            reported: set = set()
            for body_stmt in stmt.body:
                if isinstance(body_stmt, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef)):
                    # A function *defined* under the barrier yields
                    # when called later, not while the barrier is held.
                    continue
                for node in scoped_walk(body_stmt):
                    if isinstance(node, (ast.Yield, ast.YieldFrom,
                                         ast.Await)) and \
                            node.lineno not in reported:
                        reported.add(node.lineno)
                        yield ctx.finding(
                            self.id, node,
                            "scheduling boundary inside a "
                            "write_barrier() section: the group commit "
                            "is no longer atomic — other tasks (and "
                            "injected crashes) can observe the "
                            "half-written batch; move the yield outside "
                            "the barrier")


ATOMICITY_RULES = (InterruptedReadModifyWriteRule(),
                   AwaitHoldingBarrierRule())
