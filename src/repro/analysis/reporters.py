"""Render analyzer reports as text (for humans/CI logs) or JSON (for
tooling).  Both formats are stable: the text format is
``path:line:col: RULE message`` — the shape editors and CI annotators
already know how to parse — and the JSON format is a versioned object.
"""

from __future__ import annotations

import json
from typing import List

from repro.analysis.engine import Report
from repro.analysis.registry import Rule

__all__ = ["format_text", "format_json", "format_sarif",
           "format_rule_listing"]


def format_text(report: Report) -> str:
    """GCC-style one-line-per-finding text report with a summary tail."""
    lines: List[str] = [
        f"{finding.location()}: {finding.rule_id} {finding.message}"
        for finding in report.findings
    ]
    if report.findings:
        lines.append(f"✗ {len(report.findings)} violation(s) in "
                     f"{report.files_analyzed} file(s) analyzed")
    else:
        lines.append(f"✓ clean: {report.files_analyzed} file(s) analyzed, "
                     f"0 violations")
    return "\n".join(lines)


def format_json(report: Report) -> str:
    """Machine-readable report (stable schema, version 1)."""
    return json.dumps({
        "version": 1,
        "files_analyzed": report.files_analyzed,
        "violations": len(report.findings),
        "findings": [finding.to_dict() for finding in report.findings],
    }, indent=2, sort_keys=True)


def format_sarif(report: Report, rules: List[Rule]) -> str:
    """SARIF 2.1.0 document, for GitHub code-scanning upload.

    Every registered rule is listed in the driver metadata (so the rule
    index is stable regardless of which rules fired), and each finding
    becomes one ``result`` with a physical location.  Columns are
    1-based in SARIF; findings carry 0-based columns internally.
    """
    rule_index = {rule.id: position for position, rule in enumerate(rules)}
    results: list = []
    for finding in report.findings:
        result = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        results.append(result)
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro/docs/ANALYSIS.md",
                    "rules": [{
                        "id": rule.id,
                        "name": rule.name,
                        "shortDescription": {"text": rule.summary},
                        "fullDescription": {"text": rule.rationale},
                        "defaultConfiguration": {"level": "error"},
                    } for rule in rules],
                },
            },
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def format_rule_listing(rules: List[Rule]) -> str:
    """Human-readable catalogue of registered rules."""
    lines: list = []
    for rule in rules:
        scope = ", ".join(rule.scope) if rule.scope else "all modules"
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"       {rule.summary}")
        lines.append(f"       scope: {scope}")
    return "\n".join(lines)
