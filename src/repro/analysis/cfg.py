"""Per-function control-flow graphs for the analysis framework.

One :class:`CFGNode` per *simple* statement plus synthetic ``entry`` and
``exit`` nodes.  Compound statements contribute a node for their header
(the ``if``/``while``/``for``/``match`` test) and edges into their
bodies; ``try`` is transparent (its body connects straight to the
surrounding flow) but each ``except`` handler gets a head node and every
statement of the ``try`` body conservatively edges to every handler — at
this level of abstraction any statement may raise.

Design choices that matter to the rules built on top:

* ``while True`` (any constant-true test) has **no** false exit: the
  only ways out are ``break``, ``return`` and ``raise``.  A send inside
  such a loop is therefore reachable on every iteration.
* abrupt exits (``return``/``break``/``continue``/``raise``) route
  through enclosing ``finally`` blocks ("merged finally": one copy of
  the final body, fed by both the normal and the abrupt paths — the
  standard precision trade-off).
* a ``match`` statement falls through past its cases unless one of them
  is irrefutable (``case _:``).
* nested ``def``/``class`` statements are single opaque nodes — their
  bodies belong to other scopes and other CFGs.
* statements containing ``yield``/``yield from``/``await`` are flagged
  ``is_boundary``: in the simulation kernel a yield is a scheduling
  point, where other tasks (and crashes) may interleave.  Each boundary
  node also records *why* it is one in ``boundary_kinds`` — ``"yield"``,
  ``"await"``, ``"gather"`` (an ``asyncio.gather`` call, which awaits a
  whole batch), and the implicit per-iteration/enter awaits of
  ``async for`` (``"async-for"``) and ``async with`` (``"async-with"``)
  headers.  LiveRuntime code uses the async spellings; the concurrency
  rules treat every kind as the same interleaving hazard.

Node labels are ``L<lineno>:<StatementType>`` (``L7:Assign``), which
makes edge lists directly assertable in tests.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["CFG", "CFGNode", "build_cfg", "scoped_walk",
           "stmt_roots"]

_LOOP_TYPES = (ast.While, ast.For, ast.AsyncFor)
_OPAQUE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class CFGNode:
    """One control-flow node: a simple statement or a compound header."""

    __slots__ = ("index", "label", "stmt", "is_boundary", "boundary_kinds",
                 "succs")

    def __init__(self, index: int, label: str,
                 stmt: Optional[ast.AST] = None,
                 boundary_kinds: Tuple[str, ...] = ()):
        self.index = index
        self.label = label
        self.stmt = stmt
        self.boundary_kinds = boundary_kinds
        self.is_boundary = bool(boundary_kinds)
        self.succs: List["CFGNode"] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CFGNode {self.label}>"


class CFG:
    """Control-flow graph of one function."""

    __slots__ = ("name", "entry", "exit", "nodes")

    def __init__(self, name: str, entry: CFGNode, exit_node: CFGNode,
                 nodes: List[CFGNode]):
        self.name = name
        self.entry = entry
        self.exit = exit_node
        self.nodes = nodes

    def edges(self) -> List[Tuple[str, str]]:
        """Sorted ``(src_label, dst_label)`` pairs — the testable shape."""
        pairs = {(node.label, succ.label)
                 for node in self.nodes for succ in node.succs}
        return sorted(pairs)

    def boundary_labels(self) -> List[str]:
        """Labels of nodes that contain a scheduling boundary (yield)."""
        return sorted(node.label for node in self.nodes if node.is_boundary)

    def boundary_kinds(self) -> Dict[str, Tuple[str, ...]]:
        """``{label: kinds}`` for every boundary node — the testable shape
        of the *why* metadata (``("yield",)``, ``("async-for", "await")``,
        ...)."""
        return {node.label: node.boundary_kinds
                for node in self.nodes if node.is_boundary}


def stmt_roots(stmt: ast.AST) -> List[ast.AST]:
    """The parts of a statement that belong to its *own* CFG node.

    Compound statements contribute only their header expression — their
    bodies are separate nodes with their own boundary flags.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    return [stmt]


def scoped_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested scopes.

    Like :func:`ast.walk`, but prunes nested ``def``/``async def``/
    ``lambda``/``class`` bodies: what happens in another scope is not
    part of *this* function's control flow.  The roots themselves are
    still yielded (as opaque markers); only their children are skipped.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if current is not node and isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.Lambda, ast.ClassDef)):
            continue  # different scope
        stack.extend(ast.iter_child_nodes(current))


def _is_gather_call(node: ast.AST) -> bool:
    """``asyncio.gather(...)`` / bare ``gather(...)`` — awaits a batch."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "gather"
    return (isinstance(func, ast.Attribute) and func.attr == "gather"
            and isinstance(func.value, ast.Name)
            and func.value.id == "asyncio")


def _expr_boundary_kinds(root: ast.AST) -> List[str]:
    """Boundary kinds contributed by an expression tree in *this* scope."""
    kinds: set = set()
    for current in scoped_walk(root):
        if isinstance(current, (ast.Yield, ast.YieldFrom)):
            kinds.add("yield")
        elif isinstance(current, ast.Await):
            kinds.add("await")
        elif _is_gather_call(current):
            kinds.add("gather")
    return sorted(kinds)


def _is_constant_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _is_irrefutable(case: ast.match_case) -> bool:
    """``case _:`` or ``case name:`` with no guard always matches."""
    pattern = case.pattern
    return (isinstance(pattern, ast.MatchAs) and pattern.pattern is None
            and case.guard is None)


class _LoopFrame:
    __slots__ = ("head", "breaks")

    def __init__(self, head: CFGNode):
        self.head = head
        self.breaks: List[CFGNode] = []


class _Builder:
    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.loop_stack: List[_LoopFrame] = []
        # One pending-jump list per active try/finally; a frame is only
        # active while its try body / handlers / else are being built.
        self.finally_stack: List[List[Tuple[CFGNode, str]]] = []
        self.exit: Optional[CFGNode] = None

    # -- plumbing ----------------------------------------------------------

    def new_node(self, stmt: Optional[ast.AST], label: str) -> CFGNode:
        # An opaque nested scope is never a boundary of *this* scope,
        # even though its body may contain yields of its own; compound
        # headers only own their test/iterable, not their bodies.
        kinds: List[str] = []
        if stmt is not None and not isinstance(stmt, _OPAQUE_TYPES):
            found: set = set()
            for root in stmt_roots(stmt):
                found.update(_expr_boundary_kinds(root))
            # Async headers carry an implicit await even when their
            # header expression contains none: ``async for`` awaits the
            # iterator each round, ``async with`` awaits enter/exit.
            if isinstance(stmt, ast.AsyncFor):
                found.add("async-for")
            elif isinstance(stmt, ast.AsyncWith):
                found.add("async-with")
            kinds = sorted(found)
        node = CFGNode(len(self.nodes), label, stmt, tuple(kinds))
        self.nodes.append(node)
        return node

    @staticmethod
    def stmt_node_label(stmt: ast.AST) -> str:
        return f"L{getattr(stmt, 'lineno', 0)}:{type(stmt).__name__}"

    @staticmethod
    def edge(src: CFGNode, dst: CFGNode) -> None:
        if dst not in src.succs:
            src.succs.append(dst)

    def connect(self, preds: Sequence[CFGNode], node: CFGNode) -> None:
        for pred in preds:
            self.edge(pred, node)

    def route_jump(self, node: CFGNode, kind: str) -> None:
        """Send an abrupt exit towards its target, via any finally."""
        if self.finally_stack:
            self.finally_stack[-1].append((node, kind))
        elif kind in ("return", "raise"):
            assert self.exit is not None
            self.edge(node, self.exit)
        elif kind == "break":
            self.loop_stack[-1].breaks.append(node)
        elif kind == "continue":
            self.edge(node, self.loop_stack[-1].head)

    # -- recursive construction --------------------------------------------

    def block(self, stmts: Sequence[ast.stmt],
              preds: List[CFGNode]) -> List[CFGNode]:
        for stmt in stmts:
            preds = self.statement(stmt, preds)
        return preds

    def statement(self, stmt: ast.stmt,
                  preds: List[CFGNode]) -> List[CFGNode]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, _LOOP_TYPES):
            return self._loop(stmt, preds)
        if isinstance(stmt, ast.Try) or (
                hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)):
            return self._try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self.new_node(stmt, self.stmt_node_label(stmt))
            self.connect(preds, node)
            return self.block(stmt.body, [node])
        if isinstance(stmt, ast.Match):
            return self._match(stmt, preds)
        # Simple statement (or opaque nested scope).
        node = self.new_node(stmt, self.stmt_node_label(stmt))
        self.connect(preds, node)
        if isinstance(stmt, ast.Return):
            self.route_jump(node, "return")
            return []
        if isinstance(stmt, ast.Raise):
            self.route_jump(node, "raise")
            return []
        if isinstance(stmt, ast.Break):
            self.route_jump(node, "break")
            return []
        if isinstance(stmt, ast.Continue):
            self.route_jump(node, "continue")
            return []
        return [node]

    def _if(self, stmt: ast.If, preds: List[CFGNode]) -> List[CFGNode]:
        node = self.new_node(stmt, self.stmt_node_label(stmt))
        self.connect(preds, node)
        outs = self.block(stmt.body, [node])
        if stmt.orelse:
            outs += self.block(stmt.orelse, [node])
        else:
            outs += [node]  # false branch falls through
        return outs

    def _loop(self, stmt: ast.stmt, preds: List[CFGNode]) -> List[CFGNode]:
        head = self.new_node(stmt, self.stmt_node_label(stmt))
        self.connect(preds, head)
        frame = _LoopFrame(head)
        self.loop_stack.append(frame)
        body_out = self.block(stmt.body, [head])
        for node in body_out:
            self.edge(node, head)  # back edge
        self.loop_stack.pop()
        if isinstance(stmt, ast.While) and _is_constant_true(stmt.test):
            normal_exit: List[CFGNode] = []  # while True: break-only exit
        else:
            normal_exit = [head]
        if stmt.orelse:
            normal_exit = self.block(stmt.orelse, normal_exit)
        return normal_exit + frame.breaks

    def _try(self, stmt: ast.stmt, preds: List[CFGNode]) -> List[CFGNode]:
        if stmt.finalbody:
            self.finally_stack.append([])
        first_body_index = len(self.nodes)
        body_out = self.block(stmt.body, preds)
        body_nodes = self.nodes[first_body_index:]
        handler_heads: List[CFGNode] = []
        handler_outs: List[CFGNode] = []
        for handler in stmt.handlers:
            head = self.new_node(handler,
                                 f"L{handler.lineno}:ExceptHandler")
            handler_heads.append(head)
            handler_outs += self.block(handler.body, [head])
        # Any statement of the try body may raise into any handler.
        for node in body_nodes:
            for head in handler_heads:
                self.edge(node, head)
        if stmt.orelse:
            body_out = self.block(stmt.orelse, body_out)
        normal_out = body_out + handler_outs
        if not stmt.finalbody:
            return normal_out
        pending = self.finally_stack.pop()
        fin_preds = normal_out + [node for node, _ in pending]
        fin_out = self.block(stmt.finalbody, fin_preds)
        # The merged final body forwards each captured abrupt exit.
        for kind in sorted({kind for _, kind in pending}):
            for node in fin_out:
                self.route_jump(node, kind)
        return fin_out if normal_out else []

    def _match(self, stmt: ast.Match, preds: List[CFGNode]) -> List[CFGNode]:
        node = self.new_node(stmt, self.stmt_node_label(stmt))
        self.connect(preds, node)
        outs: List[CFGNode] = []
        irrefutable = False
        for case in stmt.cases:
            outs += self.block(case.body, [node])
            irrefutable = irrefutable or _is_irrefutable(case)
        if not irrefutable:
            outs += [node]  # no case matched: fall through
        return outs


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of one ``def``/``async def`` AST node."""
    builder = _Builder()
    entry = builder.new_node(None, "entry")
    exit_node = CFGNode(-1, "exit")
    builder.exit = exit_node
    outs = builder.block(getattr(func, "body", []), [entry])
    for node in outs:
        builder.edge(node, exit_node)
    exit_node.index = len(builder.nodes)
    builder.nodes.append(exit_node)
    return CFG(getattr(func, "name", "<lambda>"), entry, exit_node,
               builder.nodes)
