"""Project-wide symbol table for the whole-program analysis rules.

Built once per analyzer run from the parsed ASTs of every module under
analysis — never by importing the code.  It answers the questions the
interprocedural rules ask:

* which classes exist, what are their base classes, and what is the
  method-resolution order of a *concrete* class (so ``self.m()`` inside
  a base-class method resolves to the override the concrete class will
  actually run);
* what ``VOLATILE_FIELDS`` a class declares (unioned over the MRO);
* the literal values of UPPER_CASE class constants (storage-key tuples
  like ``INCARNATION_KEY = ("ab", "incarnation")``);
* the inferred classes of ``self.<attr>`` objects, from annotated
  ``__init__`` parameters (``consensus: ConsensusService`` assigned to
  ``self.consensus``) and direct constructions
  (``self.agreed = AgreedQueue(...)``) — which is what lets a call like
  ``self.consensus.propose(...)`` resolve across objects.

Resolution is best-effort and conservative: anything the table cannot
resolve is simply unknown, and the rules treat unknown calls as opaque.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = ["ClassInfo", "ModuleSymbols", "SymbolTable",
           "VOLATILE_DECLARATION"]

#: Class attribute declaring the volatile mirrors of durable state.
VOLATILE_DECLARATION = "VOLATILE_FIELDS"

#: Constructor names / annotation heads that denote builtin mutable
#: containers.  Used to populate :attr:`ClassInfo.mutable_attrs`.
_MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "bytearray", "defaultdict", "deque",
    "OrderedDict", "Counter",
})
_MUTABLE_ANNOTATIONS = frozenset({
    "Dict", "List", "Set", "DefaultDict", "Deque", "MutableMapping",
    "MutableSequence", "MutableSet", "dict", "list", "set", "deque",
})


def _literal(value: ast.expr) -> Tuple[bool, object]:
    """(ok, value) for a literal expression (constants, tuples, lists)."""
    try:
        return True, ast.literal_eval(value)
    except (ValueError, SyntaxError, TypeError, MemoryError):
        return False, None


def _annotation_name(annotation: Optional[ast.expr]) -> str:
    """The head name of an annotation (``Optional[Foo]`` -> ``Foo``)."""
    if annotation is None:
        return ""
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        # String annotation: take the outermost identifier.
        text = annotation.value.strip()
        head = text.split("[", 1)[0].strip()
        return head if head.isidentifier() else ""
    if isinstance(annotation, ast.Subscript):
        inner = annotation.slice
        if isinstance(annotation.value, ast.Name) and \
                annotation.value.id == "Optional":
            return _annotation_name(inner)
        return ""
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    return ""


class ClassInfo:
    """Everything the analyzer knows about one class definition."""

    __slots__ = ("name", "module", "qualname", "node", "base_refs",
                 "methods", "constants", "volatile_fields", "attr_types",
                 "mutable_attrs")

    def __init__(self, name: str, module: str, node: ast.ClassDef):
        self.name = name
        self.module = module
        self.qualname = f"{module}.{name}"
        self.node = node
        self.base_refs: List[ast.expr] = list(node.bases)
        self.methods: Dict[str, ast.AST] = {}
        self.constants: Dict[str, object] = {}
        self.volatile_fields: Tuple[str, ...] = ()
        self.attr_types: Dict[str, str] = {}  # attr -> annotation head name
        # Attrs initialized in __init__ to a *builtin* mutable container
        # (dict/list/set literal, comprehension, or constructor call) —
        # the shapes the aliasing rule considers escape-dangerous.
        # Custom classes are deliberately excluded: their sharing
        # semantics are their own business.
        self.mutable_attrs: FrozenSet[str] = frozenset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClassInfo {self.qualname}>"


class ModuleSymbols:
    """Per-module slice of the table."""

    __slots__ = ("module", "path", "tree", "imports", "classes", "functions")

    def __init__(self, module: str, path: str, tree: ast.Module):
        self.module = module
        self.path = path
        self.tree = tree
        self.imports: Dict[str, str] = {}   # local name -> dotted target
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, ast.AST] = {}


def _scan_class(info: ClassInfo) -> None:
    for stmt in info.node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = stmt
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            ok, value = _literal(stmt.value)
            if not ok:
                continue
            if name == VOLATILE_DECLARATION and \
                    isinstance(value, (tuple, list)):
                info.volatile_fields = tuple(
                    field for field in value if isinstance(field, str))
            elif name.isupper():
                info.constants[name] = value
    init = info.methods.get("__init__")
    if init is not None:
        _scan_init(info, init)


def _annotation_head(annotation: Optional[ast.expr]) -> str:
    """The outermost identifier of any annotation (``Dict[K, V]`` ->
    ``Dict``), unlike :func:`_annotation_name` which unwraps only
    ``Optional``."""
    if isinstance(annotation, ast.Subscript):
        return _annotation_head(annotation.value)
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        head = annotation.value.strip().split("[", 1)[0].strip()
        return head if head.isidentifier() else ""
    return ""


def _is_mutable_value(value: Optional[ast.expr]) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    return (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CONSTRUCTORS)


def _scan_init(info: ClassInfo, init: ast.AST) -> None:
    """Infer ``self.<attr>`` classes and mutability from ``__init__``."""
    args = getattr(init, "args", None)
    annotations: Dict[str, str] = {}
    if args is not None:
        for arg in list(args.args) + list(args.kwonlyargs):
            head = _annotation_name(arg.annotation)
            if head:
                annotations[arg.arg] = head
    mutable: List[str] = []
    for stmt in ast.walk(init):
        annotation: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value, annotation = stmt.target, stmt.value, \
                stmt.annotation
        else:
            continue
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            continue
        if isinstance(value, ast.Name) and value.id in annotations:
            info.attr_types[target.attr] = annotations[value.id]
        elif isinstance(value, ast.Call) and \
                isinstance(value.func, ast.Name):
            info.attr_types[target.attr] = value.func.id
        if _is_mutable_value(value) or \
                _annotation_head(annotation) in _MUTABLE_ANNOTATIONS:
            mutable.append(target.attr)
    info.mutable_attrs = frozenset(mutable)


class SymbolTable:
    """Classes, functions and imports of every analyzed module."""

    def __init__(self, modules: Iterable[Tuple[str, str, ast.Module]]):
        self.modules: Dict[str, ModuleSymbols] = {}
        self.classes: Dict[str, ClassInfo] = {}  # by qualname
        self._subclasses: Dict[str, List[str]] = {}
        self._mro_cache: Dict[str, Tuple[ClassInfo, ...]] = {}
        for module, path, tree in modules:
            self._scan_module(module, path, tree)
        self._index_subclasses()

    # -- construction -----------------------------------------------------

    def _scan_module(self, module: str, path: str, tree: ast.Module) -> None:
        symbols = ModuleSymbols(module, path, tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    symbols.imports[alias.asname or
                                    alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and \
                    node.level == 0:
                for alias in node.names:
                    symbols.imports[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                info = ClassInfo(stmt.name, module, stmt)
                _scan_class(info)
                symbols.classes[stmt.name] = info
                self.classes[info.qualname] = info
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbols.functions[stmt.name] = stmt
        self.modules[module] = symbols

    def _index_subclasses(self) -> None:
        for info in self.classes.values():
            for base in info.base_refs:
                resolved = self.resolve_class_ref(info.module, base)
                if resolved is not None:
                    self._subclasses.setdefault(
                        resolved.qualname, []).append(info.qualname)

    # -- reference resolution ---------------------------------------------

    def resolve_class_ref(self, module: str,
                          ref: ast.expr) -> Optional[ClassInfo]:
        """Resolve a base-class/annotation expression to a ClassInfo."""
        if isinstance(ref, ast.Attribute):
            return self.resolve_name(module, ref.attr)
        if isinstance(ref, ast.Name):
            return self.resolve_name(module, ref.id)
        return None

    def resolve_name(self, module: str, name: str) -> Optional[ClassInfo]:
        """Resolve a bare class name as seen from ``module``."""
        symbols = self.modules.get(module)
        if symbols is None:
            return None
        if name in symbols.classes:
            return symbols.classes[name]
        target = symbols.imports.get(name)
        if target is not None and target in self.classes:
            return self.classes[target]
        # Last resort: a unique short-name match anywhere in the project
        # (covers re-exports through package __init__ modules).
        matches = [info for info in self.classes.values()
                   if info.name == name]
        if len(matches) == 1:
            return matches[0]
        return None

    def resolve_function(self, module: str,
                         name: str) -> Optional[Tuple[str, ast.AST]]:
        """Resolve a bare function call; returns (module, func node)."""
        symbols = self.modules.get(module)
        if symbols is None:
            return None
        if name in symbols.functions:
            return module, symbols.functions[name]
        target = symbols.imports.get(name)
        if target is not None and "." in target:
            target_module, func_name = target.rsplit(".", 1)
            other = self.modules.get(target_module)
            if other is not None and func_name in other.functions:
                return target_module, other.functions[func_name]
        return None

    # -- hierarchy queries -------------------------------------------------

    def mro(self, qualname: str) -> Tuple[ClassInfo, ...]:
        """Linearized MRO (this class first); unknown bases are skipped."""
        cached = self._mro_cache.get(qualname)
        if cached is not None:
            return cached
        info = self.classes.get(qualname)
        if info is None:
            return ()
        self._mro_cache[qualname] = (info,)  # cycle guard
        order: List[ClassInfo] = [info]
        seen = {qualname}
        for base in info.base_refs:
            resolved = self.resolve_class_ref(info.module, base)
            if resolved is None:
                continue
            for ancestor in self.mro(resolved.qualname):
                if ancestor.qualname not in seen:
                    seen.add(ancestor.qualname)
                    order.append(ancestor)
        result = tuple(order)
        self._mro_cache[qualname] = result
        return result

    def subclasses(self, qualname: str) -> List[ClassInfo]:
        """All transitive subclasses of ``qualname``."""
        found: List[ClassInfo] = []
        seen: set = set()
        stack = list(self._subclasses.get(qualname, ()))
        while stack:
            sub = stack.pop()
            if sub in seen:
                continue
            seen.add(sub)
            info = self.classes.get(sub)
            if info is not None:
                found.append(info)
            stack.extend(self._subclasses.get(sub, ()))
        return found

    def volatile_fields(self, qualname: str) -> Tuple[str, ...]:
        """Union of ``VOLATILE_FIELDS`` declarations over the MRO."""
        fields: List[str] = []
        for info in self.mro(qualname):
            for field in info.volatile_fields:
                if field not in fields:
                    fields.append(field)
        return tuple(fields)

    def mutable_attrs(self, qualname: str) -> FrozenSet[str]:
        """Union of builtin-mutable-container attrs over the MRO."""
        found: FrozenSet[str] = frozenset()
        for info in self.mro(qualname):
            found |= info.mutable_attrs
        return found

    def find_method(self, qualname: str, name: str,
                    after: Optional[str] = None
                    ) -> Optional[Tuple[ClassInfo, ast.AST]]:
        """Resolve method ``name`` on concrete class ``qualname``.

        ``after`` (a defining class's qualname) starts the search past
        that class in the MRO — the ``super().name(...)`` case.
        """
        order = self.mro(qualname)
        if after is not None:
            for position, info in enumerate(order):
                if info.qualname == after:
                    order = order[position + 1:]
                    break
        for info in order:
            if name in info.methods:
                return info, info.methods[name]
        return None

    def class_constant(self, qualname: str, name: str) -> Tuple[bool, object]:
        """(found, value) for constant ``name`` looked up along the MRO."""
        for info in self.mro(qualname):
            if name in info.constants:
                return True, info.constants[name]
        return False, None
