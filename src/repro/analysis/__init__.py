"""Protocol-aware static analysis for the reproduction.

The reproduction rests on two invariants no type checker knows about:

1. **Determinism** — every run is a pure function of the seed
   (:mod:`repro.sim.kernel`'s contract).  Wall-clock reads, OS entropy,
   the global ``random`` module and hash-ordered ``set`` iteration all
   break it silently.
2. **Write-ahead logging** — crash-recovery safety requires state to
   reach stable storage *before* any message that depends on it is sent
   (the paper's logging discipline, Sections 5.1–5.3).

This package enforces both (plus simulation-coroutine hygiene) with an
AST-based rule engine: a registry of scoped rules, per-line suppressions
(``# repro: noqa(RULE) -- justification``), text/JSON reporters, and a
CLI (``repro lint`` / ``python -m repro.analysis``).

>>> from repro.analysis import analyze_source
>>> analyze_source("import time\\nt = time.time()\\n",
...                module="repro.sim.example")  # doctest: +ELLIPSIS
[<Finding DET001 ...>]
"""

from repro.analysis.engine import (Finding, ModuleContext, Report,
                                   analyze_paths, analyze_source,
                                   iter_python_files, module_name_for_path)
from repro.analysis.baseline import (filter_baselined, load_baseline,
                                     write_baseline)
from repro.analysis.diffs import changed_lines, filter_report
from repro.analysis.lint import execute_lint, main
from repro.analysis.msgflow import (MessageFlowGraph, build_msgflow,
                                    build_msgflow_for_paths, write_msgflow)
from repro.analysis.registry import Rule, RuleRegistry, default_registry
from repro.analysis.reporters import format_json, format_sarif, format_text

__all__ = [
    "Finding",
    "MessageFlowGraph",
    "ModuleContext",
    "Report",
    "Rule",
    "RuleRegistry",
    "analyze_paths",
    "analyze_source",
    "build_msgflow",
    "build_msgflow_for_paths",
    "changed_lines",
    "default_registry",
    "execute_lint",
    "filter_baselined",
    "filter_report",
    "format_json",
    "format_sarif",
    "format_text",
    "iter_python_files",
    "load_baseline",
    "main",
    "module_name_for_path",
    "write_baseline",
    "write_msgflow",
]
