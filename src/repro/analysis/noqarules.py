"""Suppression-hygiene rules (NOQ family).

PR 4 established the convention that every ``# repro: noqa(RULE)``
carries a ``--`` justification; PR 6's triage relied on reviewers
enforcing it by eye.  **NOQ001** closes the loophole: a suppression
comment with no justification is itself a finding.

The engine cooperates: an *unjustified* noqa comment never suppresses
NOQ001 (otherwise the bare comment would suppress the very rule that
flags it), while a justified one is exempt because the rule has nothing
to say about it.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import (Finding, ModuleContext, _JUSTIFIED_RE,
                                   _NOQA_RE)
from repro.analysis.registry import Rule

__all__ = ["NOQA_RULES", "BareNoqaRule"]


class BareNoqaRule(Rule):
    """NOQ001: every suppression must say why."""

    id = "NOQ001"
    name = "bare-noqa"
    summary = ("a `# repro: noqa(...)` suppression has no `--` "
               "justification")
    rationale = ("A suppression is a claim that the finding is a "
                 "sanctioned boundary of the paper's model; without "
                 "the reason recorded next to it, the next refactor "
                 "cannot tell a boundary from a silenced bug.")
    scope = None
    # The analyzer's own modules *document* the noqa syntax (docstrings,
    # help text, regexes); a line-based scan cannot tell a mention from
    # a suppression, so the package is carved out by configuration.
    exclude = ("repro.analysis",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for number, line in enumerate(ctx.lines, start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            if _JUSTIFIED_RE.match(line[match.end():]):
                continue
            rules = match.group("rules")
            what = f"noqa({rules.strip()})" if rules else "bare noqa"
            yield Finding(
                self.id, ctx.path, number, match.start(),
                f"suppression `# repro: {what}` has no justification: "
                f"append ` -- <why this is a sanctioned boundary>`")


NOQA_RULES = (BareNoqaRule(),)
