"""Whole-program message-flow graph: sender → message type → handler.

The paper's protocols are defined by which message types flow between
which handlers (Section 3.1's transport interface).  This module
recovers that graph statically, from the same project symbol table the
interprocedural rules share:

* **message types** — every ``WireMessage`` subclass, with its class
  level ``type`` tag (``"ab.gossip"``).  A subclass that computes its
  tag per instance (``ScopedMessage``'s ``f"{scope}::{type}"``) has no
  static tag and lands in the *dynamic* bucket;
* **send edges** — every ``send``/``multisend``/``broadcast`` call on a
  transport-shaped receiver, resolved to the message class it ships by
  looking at constructor calls in the arguments, locals assigned from a
  constructor earlier in the function, and classmethod factories
  (``StubbornData.wrap(...)``).  Unresolvable sends (a forwarding layer
  shipping an opaque parameter) are kept as *opaque* edges;
* **handler edges** — every ``register``/``register_handler``/
  ``subscribe_queue`` call, with the tag argument resolved through
  ``Msg.type`` attributes, string literals, and f-strings (the scoped
  endpoint's dynamic registrations);
* **command edges** — the membership layer's kind-string dispatch:
  ``reconfig_payload(op, ...)`` producers matched against
  ``parse_reconfig(...)`` consumers, with the op universe read from the
  ``RECONFIG_OPS`` module constant.

The graph is cached on ``ProjectContext.analysis_cache`` under
``"msgflow"`` so the MSG rule family shares one build, and is emitted
as a queryable artifact by ``repro lint --emit-msgflow out.json`` (or
``out.dot`` for Graphviz).
"""

from __future__ import annotations

import ast
import json
from typing import Dict, List, Optional, Tuple

from repro.analysis.symbols import ClassInfo, SymbolTable

__all__ = ["MessageFlowGraph", "MessageType", "SendEdge", "HandlerEdge",
           "build_msgflow", "build_msgflow_for_paths", "render_msgflow",
           "write_msgflow"]

_CACHE_KEY = "msgflow"

_SEND_OPS = frozenset({"send", "multisend", "broadcast"})
#: Receiver-name tokens that mark a call as a *transport* send.  The
#: stubborn link sends through ``self.channel.inner.send`` and the live
#: harness through a ``medium`` — both must resolve, so this is wider
#: than ALI001's list.
_SEND_RECEIVER_TOKENS = ("endpoint", "network", "transport", "channel",
                        "medium", "inner")

_REGISTER_OPS = frozenset({"register", "register_handler"})


def _attr_path(node: ast.AST) -> Tuple[str, ...]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _is_send_call(call: ast.Call) -> bool:
    path = _attr_path(call.func)
    if len(path) < 2 or path[-1] not in _SEND_OPS:
        return False
    receiver = path[:-1]
    return any(token in part
               for part in receiver for token in _SEND_RECEIVER_TOKENS)


class MessageType:
    """One ``WireMessage`` subclass (a node of the graph)."""

    __slots__ = ("tag", "class_name", "qualname", "module", "line",
                 "fields", "dynamic")

    def __init__(self, tag: Optional[str], class_name: str, qualname: str,
                 module: str, line: int, fields: Tuple[str, ...]):
        self.tag = tag
        self.class_name = class_name
        self.qualname = qualname
        self.module = module
        self.line = line
        self.fields = fields
        self.dynamic = tag is None

    def to_dict(self) -> Dict[str, object]:
        return {"tag": self.tag, "class": self.class_name,
                "module": self.module, "line": self.line,
                "fields": list(self.fields), "dynamic": self.dynamic}


class SendEdge:
    """One transport send call site (sender → type)."""

    __slots__ = ("tag", "class_name", "sender", "module", "line", "op",
                 "resolved")

    def __init__(self, tag: Optional[str], class_name: Optional[str],
                 sender: str, module: str, line: int, op: str,
                 resolved: str):
        self.tag = tag
        self.class_name = class_name
        self.sender = sender
        self.module = module
        self.line = line
        self.op = op
        #: How the payload was resolved: ``constructor`` (inline call),
        #: ``local`` (a name assigned from a constructor), ``factory``
        #: (``Cls.method(...)``), ``dynamic`` (a dynamic-tag class), or
        #: ``opaque`` (a forwarded parameter — no static class).
        self.resolved = resolved

    def to_dict(self) -> Dict[str, object]:
        return {"tag": self.tag, "class": self.class_name,
                "sender": self.sender, "module": self.module,
                "line": self.line, "op": self.op,
                "resolved": self.resolved}


class HandlerEdge:
    """One handler registration (type → handler)."""

    __slots__ = ("tag", "class_name", "handler", "handler_method",
                 "registrar", "registrar_qualname", "module", "line",
                 "via", "pattern")

    def __init__(self, tag: Optional[str], class_name: Optional[str],
                 handler: str, handler_method: Optional[str],
                 registrar: str, registrar_qualname: Optional[str],
                 module: str, line: int, via: str,
                 pattern: Optional[str] = None):
        self.tag = tag
        self.class_name = class_name
        self.handler = handler
        #: Method name on the registrar when the handler is
        #: ``self._on_x`` — what MSG003 resolves to a body.
        self.handler_method = handler_method
        self.registrar = registrar
        self.registrar_qualname = registrar_qualname
        self.module = module
        self.line = line
        self.via = via
        #: Approximate tag pattern for f-string registrations
        #: (``"{scope}::{msg_type}"``); ``None`` for static tags.
        self.pattern = pattern

    def to_dict(self) -> Dict[str, object]:
        return {"tag": self.tag, "class": self.class_name,
                "handler": self.handler, "registrar": self.registrar,
                "module": self.module, "line": self.line, "via": self.via,
                "pattern": self.pattern}


class _Site:
    """A plain code location (constructions, command edges)."""

    __slots__ = ("where", "module", "line", "detail")

    def __init__(self, where: str, module: str, line: int,
                 detail: Optional[str] = None):
        self.where = where
        self.module = module
        self.line = line
        self.detail = detail

    def to_dict(self) -> Dict[str, object]:
        found: Dict[str, object] = {"where": self.where,
                                    "module": self.module,
                                    "line": self.line}
        if self.detail is not None:
            found["detail"] = self.detail
        return found


class MessageFlowGraph:
    """The queryable artifact: types, send edges, handler edges."""

    def __init__(self) -> None:
        self.messages: Dict[str, MessageType] = {}       # by tag
        self.dynamic_messages: List[MessageType] = []    # no static tag
        self.by_qualname: Dict[str, MessageType] = {}
        self.sends: List[SendEdge] = []
        self.constructions: Dict[str, List[_Site]] = {}  # tag -> sites
        self.handlers: List[HandlerEdge] = []
        #: ``op -> {"producers": [...], "consumers": [...]}`` for the
        #: membership layer's reconfig kind-strings.
        self.commands: Dict[str, Dict[str, List[_Site]]] = {}

    # -- queries -----------------------------------------------------------

    def sent_tags(self) -> frozenset:
        return frozenset(edge.tag for edge in self.sends
                         if edge.tag is not None)

    def constructed_tags(self) -> frozenset:
        return frozenset(self.constructions)

    def handled_tags(self) -> frozenset:
        return frozenset(edge.tag for edge in self.handlers
                         if edge.tag is not None)

    def handlers_for(self, tag: str) -> List[HandlerEdge]:
        return [edge for edge in self.handlers if edge.tag == tag]

    def senders_for(self, tag: str) -> List[SendEdge]:
        return [edge for edge in self.sends if edge.tag == tag]

    def has_dynamic_registrations(self) -> bool:
        return any(edge.pattern is not None for edge in self.handlers)

    # -- emission ----------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "messages": [record.to_dict() for _, record
                         in sorted(self.messages.items())],
            "dynamic_messages": [record.to_dict()
                                 for record in self.dynamic_messages],
            "sends": [edge.to_dict() for edge in self.sends],
            "constructions": {tag: [site.to_dict() for site in sites]
                              for tag, sites
                              in sorted(self.constructions.items())},
            "handlers": [edge.to_dict() for edge in self.handlers],
            "commands": {op: {"producers": [s.to_dict() for s in v["producers"]],
                              "consumers": [s.to_dict() for s in v["consumers"]]}
                         for op, v in sorted(self.commands.items())},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=False)

    def to_dot(self) -> str:
        def quote(text: str) -> str:
            return '"' + text.replace('"', '\\"') + '"'

        lines = ["digraph msgflow {", "  rankdir=LR;",
                 '  node [fontname="monospace"];']
        for tag, record in sorted(self.messages.items()):
            lines.append(f"  {quote('msg:' + tag)} [shape=box, "
                         f"label={quote(tag + chr(10) + record.class_name)}];")
        for record in self.dynamic_messages:
            lines.append(f"  {quote('msg:<dynamic>:' + record.class_name)} "
                         f"[shape=box, style=dashed, "
                         f"label={quote(record.class_name + chr(10) + '(dynamic tag)')}];")
        seen = set()
        for edge in self.sends:
            if edge.tag is None:
                continue
            pair = (edge.sender, edge.tag)
            if pair in seen:
                continue
            seen.add(pair)
            lines.append(f"  {quote(edge.sender)} -> {quote('msg:' + edge.tag)};")
        for edge in self.handlers:
            if edge.tag is None:
                continue
            pair = (edge.tag, edge.handler)
            if pair in seen:
                continue
            seen.add(pair)
            lines.append(f"  {quote('msg:' + edge.tag)} -> {quote(edge.handler)};")
        for op, parts in sorted(self.commands.items()):
            node = f"cmd:reconfig:{op}"
            lines.append(f"  {quote(node)} [shape=diamond];")
            for site in parts["producers"]:
                lines.append(f"  {quote(site.where)} -> {quote(node)};")
            for site in parts["consumers"]:
                lines.append(f"  {quote(node)} -> {quote(site.where)};")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def summary(self) -> str:
        return (f"{len(self.messages)} message type(s), "
                f"{len(self.sends)} send site(s), "
                f"{len(self.handlers)} handler edge(s), "
                f"{len(self.commands)} reconfig op(s)")


# -- message-class index ---------------------------------------------------

def _is_message_class(table: SymbolTable, info: ClassInfo) -> bool:
    if info.name == "WireMessage":
        return True
    for ancestor in table.mro(info.qualname)[1:]:
        if ancestor.name == "WireMessage":
            return True
    # Syntactic fallback: a fixture module subclassing a WireMessage the
    # analyzer never parsed.
    for base in info.base_refs:
        name = base.attr if isinstance(base, ast.Attribute) else \
            getattr(base, "id", "")
        if name == "WireMessage":
            return True
    return False


def _own_class_str(info: ClassInfo, name: str) -> Optional[str]:
    """A class-body ``name = "literal"`` assignment (lowercase names are
    not in ``ClassInfo.constants``, so scan the body directly)."""
    for stmt in info.node.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name) and \
                stmt.targets[0].id == name and \
                isinstance(stmt.value, ast.Constant) and \
                isinstance(stmt.value.value, str):
            return stmt.value.value
    return None


def _own_class_str_tuple(info: ClassInfo,
                         name: str) -> Optional[Tuple[str, ...]]:
    for stmt in info.node.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name) and \
                stmt.targets[0].id == name and \
                isinstance(stmt.value, ast.Tuple):
            elements = []
            for elt in stmt.value.elts:
                if isinstance(elt, ast.Constant) and \
                        isinstance(elt.value, str):
                    elements.append(elt.value)
            return tuple(elements)
    return None


def _message_tag(table: SymbolTable, info: ClassInfo) -> Optional[str]:
    """The static wire tag of a message class.

    Own body first, then ancestors — but *not* the ``WireMessage`` root:
    a subclass that neither declares a tag nor inherits one from an
    intermediate base computes it per instance (``ScopedMessage``), and
    inheriting the root's placeholder would hide that.
    """
    own = _own_class_str(info, "type")
    if own is not None:
        return own
    for ancestor in table.mro(info.qualname)[1:]:
        if ancestor.name == "WireMessage":
            continue
        inherited = _own_class_str(ancestor, "type")
        if inherited is not None:
            return inherited
    return None


def _message_fields(table: SymbolTable, info: ClassInfo) -> Tuple[str, ...]:
    order = table.mro(info.qualname) or (info,)
    for ancestor in order:
        fields = _own_class_str_tuple(ancestor, "fields")
        if fields is not None:
            return fields
    return ()


# -- graph construction ----------------------------------------------------

class _Builder:
    def __init__(self, project) -> None:
        self.project = project
        self.table: SymbolTable = project.symbols
        self.graph = MessageFlowGraph()

    def build(self) -> MessageFlowGraph:
        self._index_messages()
        for module in sorted(self.table.modules):
            self._scan_module(self.table.modules[module])
        self._finish_commands()
        return self.graph

    # -- messages ----------------------------------------------------------

    def _index_messages(self) -> None:
        for qualname in sorted(self.table.classes):
            info = self.table.classes[qualname]
            if not _is_message_class(self.table, info):
                continue
            record = MessageType(_message_tag(self.table, info), info.name,
                                 qualname, info.module, info.node.lineno,
                                 _message_fields(self.table, info))
            self.graph.by_qualname[qualname] = record
            if record.tag is not None:
                # First definition wins; duplicated tags would be a wire
                # ambiguity, but that is MSG001/002's business, not the
                # index's.
                self.graph.messages.setdefault(record.tag, record)
            else:
                self.graph.dynamic_messages.append(record)

    def _message_record(self, module: str,
                        class_name: str) -> Optional[MessageType]:
        info = self.table.resolve_name(module, class_name)
        if info is None:
            return None
        return self.graph.by_qualname.get(info.qualname)

    # -- per-module scan ---------------------------------------------------

    def _scan_module(self, symbols) -> None:
        for name in sorted(symbols.classes):
            info = symbols.classes[name]
            for method_name in sorted(info.methods):
                self._scan_function(symbols.module,
                                    f"{info.name}.{method_name}",
                                    info.methods[method_name], info)
        for name in sorted(symbols.functions):
            self._scan_function(symbols.module,
                                f"{symbols.module}.{name}",
                                symbols.functions[name], None)

    def _constructed_record(self, call: ast.Call,
                            module: str) -> Optional[MessageType]:
        """The message class a constructor/factory call produces."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._message_record(module, func.id)
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            record = self._message_record(module, func.value.id)
            if record is None:
                return None
            # ``Cls.wrap(...)`` — only count real factory methods, not
            # arbitrary attribute access on the class.
            found = self.table.find_method(record.qualname, func.attr)
            if found is not None:
                return record
        return None

    def _scan_function(self, module: str, where: str, func: ast.AST,
                       owner: Optional[ClassInfo]) -> None:
        local_env: Dict[str, MessageType] = {}
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            record = self._constructed_record(node, module)
            if record is not None:
                if isinstance(node.func, ast.Name):
                    resolved = "constructor"
                else:
                    resolved = "factory"
                if record.tag is not None:
                    self.graph.constructions.setdefault(
                        record.tag, []).append(
                        _Site(where, module, node.lineno, resolved))
            self._note_registration(node, module, where, owner)
            self._note_command(node, module, where)
        # Locals assigned from a constructor, for send-site resolution
        # (``envelope = StubbornData.wrap(...); ... send(..., envelope)``).
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    isinstance(node.value, ast.Call):
                record = self._constructed_record(node.value, module)
                if record is not None:
                    local_env[node.targets[0].id] = record
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and _is_send_call(node):
                self._note_send(node, module, where, local_env)

    # -- send edges --------------------------------------------------------

    def _note_send(self, call: ast.Call, module: str, where: str,
                   local_env: Dict[str, MessageType]) -> None:
        op = _attr_path(call.func)[-1]
        payload: Optional[MessageType] = None
        resolved = "opaque"
        candidates = list(call.args) + [kw.value for kw in call.keywords]
        for arg in candidates:
            if isinstance(arg, ast.Call):
                record = self._constructed_record(arg, module)
                if record is not None:
                    payload = record
                    resolved = "constructor" if \
                        isinstance(arg.func, ast.Name) else "factory"
                    break
            elif isinstance(arg, ast.Name) and arg.id in local_env:
                payload = local_env[arg.id]
                resolved = "local"
                break
        if payload is not None and payload.tag is None:
            resolved = "dynamic"
        self.graph.sends.append(SendEdge(
            payload.tag if payload is not None else None,
            payload.class_name if payload is not None else None,
            where, module, call.lineno, op, resolved))

    # -- handler edges -----------------------------------------------------

    def _note_registration(self, call: ast.Call, module: str, where: str,
                           owner: Optional[ClassInfo]) -> None:
        path = _attr_path(call.func)
        if not path:
            return
        op = path[-1]
        if op in _REGISTER_OPS and len(call.args) >= 2:
            handler, handler_method = self._handler_label(call.args[1],
                                                          owner)
        elif op == "subscribe_queue" and len(call.args) >= 1:
            handler, handler_method = "ReceiveQueue.deposit", None
        else:
            return
        tag, class_name, pattern = self._tag_of(call.args[0], module)
        if tag is None and pattern is None and class_name is None:
            return  # not a recognizable registration shape
        self.graph.handlers.append(HandlerEdge(
            tag, class_name, handler, handler_method,
            where, owner.qualname if owner is not None else None,
            module, call.lineno, op, pattern))

    def _tag_of(self, expr: ast.expr, module: str
                ) -> Tuple[Optional[str], Optional[str], Optional[str]]:
        """(tag, class name, f-string pattern) of a registration's
        type argument."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            record = self.graph.messages.get(expr.value)
            return expr.value, \
                record.class_name if record is not None else None, None
        if isinstance(expr, ast.Attribute) and \
                isinstance(expr.value, ast.Name) and expr.attr == "type":
            record = self._message_record(module, expr.value.id)
            if record is not None:
                return record.tag, record.class_name, None
            return None, expr.value.id, None
        if isinstance(expr, ast.JoinedStr):
            parts: List[str] = []
            for value in expr.values:
                if isinstance(value, ast.Constant):
                    parts.append(str(value.value))
                else:
                    parts.append("{*}")
            return None, None, "".join(parts)
        return None, None, None

    @staticmethod
    def _handler_label(expr: ast.expr, owner: Optional[ClassInfo]
                       ) -> Tuple[str, Optional[str]]:
        if isinstance(expr, ast.Attribute):
            path = _attr_path(expr)
            if path[:1] == ("self",) and len(path) == 2 and \
                    owner is not None:
                return f"{owner.name}.{path[1]}", path[1]
            return ".".join(path) if path else "<handler>", None
        if isinstance(expr, ast.Name):
            return expr.id, None
        return "<handler>", None

    # -- command edges (kind-string dispatch) ------------------------------

    def _note_command(self, call: ast.Call, module: str,
                      where: str) -> None:
        func = call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        if name == "reconfig_payload" and call.args:
            op_arg = call.args[0]
            op = op_arg.value if isinstance(op_arg, ast.Constant) and \
                isinstance(op_arg.value, str) else "*"
            self.graph.commands.setdefault(
                op, {"producers": [], "consumers": []})["producers"].append(
                _Site(where, module, call.lineno))
        elif name == "parse_reconfig":
            self.graph.commands.setdefault(
                "*", {"producers": [], "consumers": []})["consumers"].append(
                _Site(where, module, call.lineno))

    def _finish_commands(self) -> None:
        """Spread wildcard producers/consumers over the op universe."""
        ops: List[str] = []
        for module in sorted(self.table.modules):
            tree = self.table.modules[module].tree
            for stmt in tree.body:
                if isinstance(stmt, ast.Assign) and \
                        len(stmt.targets) == 1 and \
                        isinstance(stmt.targets[0], ast.Name) and \
                        stmt.targets[0].id == "RECONFIG_OPS" and \
                        isinstance(stmt.value, ast.Tuple):
                    ops = [elt.value for elt in stmt.value.elts
                           if isinstance(elt, ast.Constant) and
                           isinstance(elt.value, str)]
        if not ops:
            ops = sorted(op for op in self.graph.commands if op != "*")
        wildcard = self.graph.commands.pop("*", None)
        if wildcard is None:
            return
        for op in ops:
            entry = self.graph.commands.setdefault(
                op, {"producers": [], "consumers": []})
            entry["producers"].extend(wildcard["producers"])
            entry["consumers"].extend(wildcard["consumers"])
        if not ops:
            self.graph.commands["*"] = wildcard


def build_msgflow(project) -> MessageFlowGraph:
    """Build (or fetch the cached) graph for a ProjectContext."""
    cached = project.analysis_cache.get(_CACHE_KEY)
    if isinstance(cached, MessageFlowGraph):
        return cached
    graph = _Builder(project).build()
    project.analysis_cache[_CACHE_KEY] = graph
    return graph


def build_msgflow_for_paths(paths) -> MessageFlowGraph:
    """Standalone build over files/directories (the ``--emit-msgflow``
    path: no rules run, just the graph)."""
    from repro.analysis.engine import (ModuleContext, ProjectContext,
                                       iter_python_files,
                                       module_name_for_path)
    from repro.errors import AnalysisError
    contexts: List[ModuleContext] = []
    for filepath in iter_python_files(paths):
        with open(filepath, encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=filepath)
        except SyntaxError as exc:
            raise AnalysisError(
                f"{filepath}:{exc.lineno}: cannot parse: {exc.msg}") from exc
        contexts.append(ModuleContext(module_name_for_path(filepath),
                                      filepath, tree, source))
    return build_msgflow(ProjectContext(contexts))


def render_msgflow(graph: MessageFlowGraph, out_path: str) -> str:
    """The artifact text for ``out_path`` (``.dot`` → Graphviz, else
    JSON)."""
    if out_path.endswith(".dot"):
        return graph.to_dot()
    return graph.to_json()


def write_msgflow(paths, out_path: str) -> MessageFlowGraph:
    """Build the graph for ``paths`` and write it to ``out_path``."""
    graph = build_msgflow_for_paths(paths)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(render_msgflow(graph, out_path))
    return graph
