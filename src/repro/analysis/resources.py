"""Resource-bounds rules (RES family).

The paper's retransmission and buffer layers may accumulate state, but
every accumulation needs a bound: Section 5's practical considerations
(and PR 8's overload work) hinge on queues that shed load instead of
growing until the process dies.  These rules make the three recurring
accidents machine-checked:

* **RES001 — unbounded growth on a receive path.**  A builtin mutable
  ``self`` container is grown (append/add/``[k] = v``/...) somewhere
  reachable from a message handler, and the class has no eviction for
  that field, no ``deque(maxlen=...)`` construction, and no reachable
  bound check (``len(self.f) >= cap`` guard or ``try_admit``-style
  admission call) on the path to the growth site.  Peer-keyed maps
  (``self.last_seen[sender] = now``) are exempt: they are bounded by
  the membership, not a counter.
* **RES002 — blocking call in async code.**  ``time.sleep`` / sync file
  I/O / ``subprocess`` inside an ``async def`` stalls the whole
  LiveRuntime event loop, turning one slow node into a gray failure of
  every component sharing the loop.
* **RES003 — durable write amplification.**  Storage writes issued in a
  loop outside a ``write_barrier()`` hit the disk once per iteration;
  the barrier exists to group-commit them (ROADMAP item 4).

RES001 is deliberately a *may* analysis on the guard side: a bound
check on any path to the growth site counts.  That under-reports, but
an unbounded-growth lint that cries wolf on every guarded queue would
be suppressed into uselessness within a PR.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.cfg import build_cfg, scoped_walk, stmt_roots
from repro.analysis.dataflow import SetUnionProblem, solve_forward
from repro.analysis.engine import Finding, ProjectContext
from repro.analysis.registry import Rule
from repro.analysis.symbols import ClassInfo

__all__ = ["RES_RULES", "UnboundedGrowthRule", "BlockingAsyncCallRule",
           "WriteAmplificationRule"]

_RES_SCOPE = ("repro.core", "repro.consensus", "repro.quorum",
              "repro.multigroup", "repro.fdetect", "repro.apps",
              "repro.baselines", "repro.membership", "repro.flow",
              "repro.transport")

_GROWTH_METHODS = frozenset({"append", "add", "insert", "appendleft",
                             "setdefault", "extend", "update"})
_EVICT_METHODS = frozenset({"pop", "popleft", "popitem", "remove",
                            "discard", "clear"})
#: Lifecycle resets do not bound steady-state growth: ``on_crash``
#: clearing a dict is the crash model, not an eviction policy.
_LIFECYCLE_METHODS = frozenset({"__init__", "on_start", "on_crash",
                                "_restore_volatile_state"})
#: Handler-shaped method names that root a receive path even without a
#: statically-resolved registration.
_HANDLER_NAMES = ("on_deliver", "deposit")
#: Subscript keys drawn from these parameters index by *peer* (or by
#: group): the map is bounded by the membership/group configuration,
#: not by a counter.
_PEER_PARAMS = frozenset({"sender", "peer", "src", "dst", "node_id",
                          "target", "coordinator", "origin", "group"})
#: Name fragments that mark the other side of a comparison as a bound.
_BOUND_TOKENS = ("bound", "limit", "max", "capacity", "high_water",
                 "window", "budget", "quorum", "backlog")
_ADMIT_TOKENS = ("try_admit", "admit", "queue_bound")


def _attr_path(node: ast.AST) -> Tuple[str, ...]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _self_field(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _len_of_self_field(node: ast.AST) -> Optional[str]:
    """``len(self.f)`` -> ``f``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and \
            node.func.id == "len" and len(node.args) == 1:
        return _self_field(node.args[0])
    return None


def _mentions_bound_name(node: ast.AST) -> bool:
    for current in ast.walk(node):
        name = ""
        if isinstance(current, ast.Name):
            name = current.id
        elif isinstance(current, ast.Attribute):
            name = current.attr
        if name and any(token in name.lower() for token in _BOUND_TOKENS):
            return True
    return False


def _guarded_fields(expr: ast.AST) -> Set[str]:
    """Fields a statement's expression establishes a bound fact for."""
    guarded: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Compare):
            sides = [node.left] + list(node.comparators)
            fields: Set[str] = set()
            for side in sides:
                field = _len_of_self_field(side)
                if field is not None:
                    fields.add(field)
            if fields:
                guarded |= fields
                continue
            # ``self.f`` compared against something bound-shaped
            # (``while self.pending and len(...) < cap`` variants).
            direct = {f for side in sides
                      for f in [_self_field(side)] if f is not None}
            if direct and any(_mentions_bound_name(side)
                              for side in sides):
                guarded |= direct
        elif isinstance(node, ast.Call):
            path = _attr_path(node.func)
            name = path[-1] if path else ""
            if any(token in name for token in _ADMIT_TOKENS):
                for arg in list(node.args) + \
                        [kw.value for kw in node.keywords]:
                    for sub in ast.walk(arg):
                        field = _len_of_self_field(sub) or _self_field(sub)
                        if field is not None:
                            guarded.add(field)
    return guarded


class _GuardProblem(SetUnionProblem):
    """Forward may-analysis: which fields have a bound fact on some
    path reaching each node."""

    def transfer(self, node, state):
        if node.stmt is None:
            return state
        gen: Set[str] = set()
        for root in stmt_roots(node.stmt):
            if root is not None:
                gen |= _guarded_fields(root)
        return state | frozenset(gen) if gen else state


class _GrowthSite:
    __slots__ = ("field", "node", "op")

    def __init__(self, field: str, node: ast.AST, op: str):
        self.field = field
        self.node = node
        self.op = op


def _growth_sites(func: ast.AST, mutable: FrozenSet[str],
                  params: FrozenSet[str]) -> List[_GrowthSite]:
    sites: List[_GrowthSite] = []
    for node in scoped_walk(func):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _GROWTH_METHODS:
            field = _self_field(node.func.value)
            if field is not None and field in mutable:
                sites.append(_GrowthSite(field, node, node.func.attr))
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Subscript):
            target = node.targets[0]
            field = _self_field(target.value)
            if field is None or field not in mutable:
                continue
            key = target.slice
            if isinstance(key, ast.Name) and key.id in _PEER_PARAMS and \
                    key.id in params:
                continue  # peer-keyed: bounded by the membership
            sites.append(_GrowthSite(field, node, "subscript"))
    return sites


def _evicted_fields(table, concrete: ClassInfo) -> Set[str]:
    """Fields with an eviction op anywhere in the class's MRO (outside
    lifecycle resets)."""
    evicted: Set[str] = set()
    for info in table.mro(concrete.qualname) or (concrete,):
        for name, func in info.methods.items():
            if name in _LIFECYCLE_METHODS:
                continue
            for node in ast.walk(func):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in _EVICT_METHODS:
                    field = _self_field(node.func.value)
                    if field is not None:
                        evicted.add(field)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        if isinstance(target, ast.Subscript):
                            field = _self_field(target.value)
                            if field is not None:
                                evicted.add(field)
    return evicted


def _bounded_fields(table, concrete: ClassInfo) -> Set[str]:
    """Fields constructed as ``deque(maxlen=...)`` in any ``__init__``."""
    bounded: Set[str] = set()
    for info in table.mro(concrete.qualname) or (concrete,):
        init = info.methods.get("__init__")
        if init is None:
            continue
        for node in ast.walk(init):
            if not (isinstance(node, ast.Assign) and
                    len(node.targets) == 1):
                continue
            field = _self_field(node.targets[0])
            if field is None or not isinstance(node.value, ast.Call):
                continue
            func = node.value.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else "")
            if name == "deque" and any(kw.arg == "maxlen"
                                       for kw in node.value.keywords):
                bounded.add(field)
    return bounded


def _func_params(func: ast.AST) -> FrozenSet[str]:
    args = getattr(func, "args", None)
    if args is None:
        return frozenset()
    names = [arg.arg for arg in args.args] + \
        [arg.arg for arg in args.kwonlyargs]
    return frozenset(names)


def _registered_handler_names(info: ClassInfo) -> Set[str]:
    """Method names passed as handlers to ``register``-shaped calls."""
    names: Set[str] = set()
    for func in info.methods.values():
        for call in ast.walk(func):
            if not isinstance(call, ast.Call) or len(call.args) < 2:
                continue
            if _attr_path(call.func)[-1:] not in (
                    ("register",), ("register_handler",)):
                continue
            handler = _self_field(call.args[1])
            if handler is not None:
                names.add(handler)
    return names


class UnboundedGrowthRule(Rule):
    """RES001: every receive-path accumulation needs a bound."""

    id = "RES001"
    name = "unbounded-receive-growth"
    summary = ("a mutable self container grows on a message-handler "
               "path with no eviction, maxlen, or reachable bound "
               "check")
    rationale = ("Section 5's buffers survive overload only because "
                 "every accumulation sheds load somewhere; a handler "
                 "that grows a dict per message is the PR 8 bug class "
                 "— memory that scales with traffic, not with the "
                 "protocol's window.")
    scope = _RES_SCOPE
    requires_project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        table = project.symbols
        emitted: Set[Tuple[str, int, str]] = set()
        for ctx in project.in_scope(self):
            symbols = table.modules.get(ctx.module)
            if symbols is None:
                continue
            for name in sorted(symbols.classes):
                yield from self._check_class(project, symbols.classes[name],
                                             emitted)

    def _check_class(self, project: ProjectContext, concrete: ClassInfo,
                     emitted: Set[Tuple[str, int, str]]
                     ) -> Iterator[Finding]:
        table = project.symbols
        mutable = table.mutable_attrs(concrete.qualname)
        if not mutable:
            return
        roots = self._receive_roots(table, concrete)
        if not roots:
            return
        evicted = _evicted_fields(table, concrete)
        bounded = _bounded_fields(table, concrete)
        suspect = mutable - evicted - bounded
        if not suspect:
            return
        for defining, func, root_name in self._closure(project, concrete,
                                                       roots):
            params = _func_params(func)
            sites = [site for site in _growth_sites(func, suspect, params)]
            if not sites:
                continue
            guards = self._guard_states(func)
            for site in sites:
                if site.field in guards.get(id(site.node), frozenset()):
                    continue
                key = (defining.module, site.node.lineno, site.field)
                if key in emitted:
                    continue
                emitted.add(key)
                finding = project.finding(
                    self.id, defining.module, site.node,
                    f"self.{site.field} grows "
                    f"({site.op}) on a receive path (reached from "
                    f"{concrete.name}.{root_name}) with no eviction, "
                    f"maxlen, or reachable bound check: memory scales "
                    f"with message traffic; add a queue_bound-style "
                    f"guard or an eviction")
                if finding is not None:
                    yield finding

    @staticmethod
    def _receive_roots(table, concrete: ClassInfo) -> List[str]:
        names: Set[str] = set()
        for info in table.mro(concrete.qualname) or (concrete,):
            for name in info.methods:
                if name.startswith("_on_") or name in _HANDLER_NAMES:
                    names.add(name)
            names |= _registered_handler_names(info)
        return sorted(names)

    def _closure(self, project: ProjectContext, concrete: ClassInfo,
                 roots: List[str]):
        """(defining ClassInfo, func, root name) for every method
        reachable from a receive root via ``self.*`` calls."""
        table = project.symbols
        resolver = project.resolver
        visited: Set[Tuple[str, str]] = set()
        queue: List[Tuple[ClassInfo, ast.AST, str]] = []
        for root in roots:
            found = table.find_method(concrete.qualname, root)
            if found is None:
                continue
            owner, func = found
            if (owner.qualname, root) not in visited:
                visited.add((owner.qualname, root))
                queue.append((owner, func, root))
        while queue:
            defining, func, root_name = queue.pop(0)
            yield defining, func, root_name
            for node in scoped_walk(func):
                if not isinstance(node, ast.Call):
                    continue
                for target in resolver.resolve(node, defining.module,
                                               concrete, defining):
                    if target.receiver != "self" or target.defining is None:
                        continue
                    key = (target.defining.qualname,
                           getattr(target.func, "name", ""))
                    if key in visited:
                        continue
                    visited.add(key)
                    queue.append((target.defining, target.func, root_name))

    @staticmethod
    def _guard_states(func: ast.AST) -> Dict[int, frozenset]:
        """``id(stmt or call node) -> guarded fields`` at that point."""
        cfg = build_cfg(func)
        in_states = solve_forward(cfg, _GuardProblem())
        by_node: Dict[int, frozenset] = {}
        for node in cfg.nodes:
            if node.stmt is None or node.index not in in_states:
                continue
            state = in_states[node.index]
            # A guard in this statement's own header also covers growth
            # nested in the same statement (``if ...: self.f[k] = v``
            # bodies get their own nodes, but a call expression shares
            # its statement's node).
            gen: Set[str] = set()
            for root in stmt_roots(node.stmt):
                if root is not None:
                    gen |= _guarded_fields(root)
            state = state | frozenset(gen)
            for sub in scoped_walk(node.stmt):
                by_node[id(sub)] = state
        return by_node


class BlockingAsyncCallRule(Rule):
    """RES002: no blocking call inside LiveRuntime async code."""

    id = "RES002"
    name = "blocking-call-in-async"
    summary = ("time.sleep / sync file I/O / subprocess inside an "
               "async function")
    rationale = ("The live runtime multiplexes every node's protocol "
                 "stack on one event loop; a blocking call freezes "
                 "all of them at once — a self-inflicted gray "
                 "failure.")
    scope = ("repro.runtime", "repro.harness")

    #: ``(module, attr)`` call paths that block the loop.
    _BLOCKING_PATHS = frozenset({
        ("time", "sleep"), ("os", "fsync"), ("os", "fdatasync"),
        ("os", "replace"), ("os", "rename"), ("os", "remove"),
        ("os", "unlink"),
    })

    def check(self, ctx) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in scoped_walk(func):
                if not isinstance(node, ast.Call):
                    continue
                reason = self._blocking_reason(node)
                if reason is not None:
                    yield ctx.finding(
                        self.id, node,
                        f"blocking call {reason} inside async function "
                        f"{func.name!r}: this stalls the whole event "
                        f"loop; use the asyncio equivalent or "
                        f"run_in_executor")

    def _blocking_reason(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "open() (sync file I/O)"
            return None
        path = _attr_path(func)
        if len(path) == 2 and path in self._BLOCKING_PATHS:
            return f"{path[0]}.{path[1]}()"
        if path[:1] == ("subprocess",):
            return f"subprocess.{path[-1]}()"
        return None


class WriteAmplificationRule(Rule):
    """RES003: storage writes in a loop belong inside a write barrier."""

    id = "RES003"
    name = "durable-write-amplification"
    summary = ("storage writes issued in a loop outside a "
               "write_barrier()")
    rationale = ("Each bare storage write is a separate durable "
                 "commit; a loop of them turns one logical state "
                 "change into O(n) disk round-trips — the exact cost "
                 "the write barrier's group commit exists to "
                 "amortize (ROADMAP item 4).")
    scope = _RES_SCOPE

    _WRITE_OPS = frozenset({"log", "append"})

    def check(self, ctx) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            yield from self._visit(ctx, func, in_loop=False,
                                   in_barrier=False)

    def _visit(self, ctx, node: ast.AST, in_loop: bool,
               in_barrier: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue  # other scopes lint on their own
            loop = in_loop or isinstance(child, (ast.For, ast.While,
                                                 ast.AsyncFor))
            barrier = in_barrier or self._is_barrier(child)
            if isinstance(child, ast.Call) and loop and not barrier:
                field = self._storage_write(child)
                if field is not None:
                    yield ctx.finding(
                        self.id, child,
                        f"storage write {field} inside a loop with no "
                        f"enclosing write_barrier(): each iteration "
                        f"is a separate durable commit; wrap the loop "
                        f"in `with storage.write_barrier():` to group "
                        f"commit")
            yield from self._visit(ctx, child, loop, barrier)

    @staticmethod
    def _is_barrier(node: ast.AST) -> bool:
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            return False
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                path = _attr_path(expr.func)
                if path[-1:] == ("write_barrier",):
                    return True
        return False

    def _storage_write(self, call: ast.Call) -> Optional[str]:
        path = _attr_path(call.func)
        if len(path) < 2 or path[-1] not in self._WRITE_OPS:
            return None
        receiver = path[:-1]
        if any("storage" in part or part == "store" for part in receiver):
            return ".".join(path) + "()"
        return None


RES_RULES = (UnboundedGrowthRule(), BlockingAsyncCallRule(),
             WriteAmplificationRule())
