"""Recovery-completeness rules (REC family).

The paper's recovery procedure (Figure 4) is a *total* replay: on
restart a process reloads **every** piece of durable state it ever
wrote — the incarnation counter, logged proposals, decisions, delivered
prefixes.  A storage key that protocol code writes but never reads back
during recovery is wasted-log-bandwidth at best; at worst it is state
the author *believed* survives crashes but that every recovery silently
ignores (the bug class these rules exist for).  The dual failure is the
phantom read: recovery code retrieving a key nobody writes, which
"works" only because ``retrieve`` has a default.

Both rules are whole-program: the write side is collected from every
module in scope, and the read side is the closure of ``on_start`` —
every method reachable from any concrete component's ``on_start``
through resolved calls, address-taken handler registrations
(``endpoint.register(T, self._on_msg)``) and spawned generator tasks.
A read performed lazily by a message handler still counts: the handler
is registered during recovery, so its reads are part of the recovery
surface.

Storage keys are compared as *patterns*: constants stay literal,
class-constant tuples (``INCARNATION_KEY = ("ab", "incarnation")``) are
spliced through the concrete class's MRO, and anything dynamic becomes a
``*`` wildcard, so ``("consensus", k, "proposal")`` written by
``propose`` is satisfied by the ``keys(("consensus",))`` prefix scan in
``logged_instances``.  Helpers that forward a key parameter to a storage
call (``def _store(self, key, value): ... storage.log(key, value)``)
are detected in a first pass, and their *call sites* supply the key
patterns.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, ProjectContext
from repro.analysis.registry import Rule
from repro.analysis.symbols import ClassInfo

__all__ = ["RECOVERY_RULES"]

_WRITE_OPS = frozenset({"log", "append"})
_READ_OPS = frozenset({"retrieve", "retrieve_list"})
_PREFIX_OPS = frozenset({"keys", "delete_prefix"})

#: Pattern element standing for "any single component".
_ANY = "*"

_PROTOCOL_SCOPE = ("repro.core", "repro.consensus", "repro.quorum",
                   "repro.multigroup", "repro.fdetect", "repro.apps",
                   "repro.baselines", "repro.membership", "repro.flow")


def _attr_path(node: ast.AST) -> Tuple[str, ...]:
    parts: list = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _is_storage_receiver(receiver: Tuple[str, ...]) -> bool:
    return any("storage" in part or part == "store" for part in receiver)


def _canonical_element(value: object) -> str:
    if isinstance(value, str):
        return value
    return repr(value)


class _KeyShape:
    """A storage-key pattern: literal components with ``*`` wildcards."""

    __slots__ = ("elements", "is_prefix")

    def __init__(self, elements: Tuple[str, ...], is_prefix: bool = False):
        self.elements = elements
        self.is_prefix = is_prefix

    @property
    def opaque(self) -> bool:
        """True when nothing literal survived — unmatchable, skip it."""
        return all(element == _ANY for element in self.elements)

    def describe(self) -> str:
        body = ", ".join(element if element == _ANY else repr(element)
                         for element in self.elements)
        tail = ", ..." if self.is_prefix else ""
        return f"({body}{tail})"

    def matches(self, other: "_KeyShape") -> bool:
        """True if some concrete key satisfies both patterns.

        A prefix pattern (from a ``keys(prefix)`` scan) matches on its
        own length; exact patterns must agree on length.
        """
        ours, theirs = self.elements, other.elements
        if self.is_prefix and other.is_prefix:
            compare = min(len(ours), len(theirs))
        elif self.is_prefix:
            if len(theirs) < len(ours):
                return False
            compare = len(ours)
        elif other.is_prefix:
            if len(ours) < len(theirs):
                return False
            compare = len(theirs)
        else:
            if len(ours) != len(theirs):
                return False
            compare = len(ours)
        return all(a == _ANY or b == _ANY or a == b
                   for a, b in zip(ours[:compare], theirs[:compare]))


def _canonical_key(expr: ast.AST, project: ProjectContext,
                   owner: Optional[ClassInfo],
                   is_prefix: bool = False) -> _KeyShape:
    """Flatten a key expression into a :class:`_KeyShape`."""
    elements: List[str] = []

    def flatten(node: ast.AST) -> None:
        if isinstance(node, ast.Tuple):
            for elt in node.elts:
                flatten(elt)
            return
        if isinstance(node, ast.Constant):
            elements.append(_canonical_element(node.value))
            return
        constant = _resolve_constant(node, project, owner)
        if constant is not None:
            found, value = constant
            if found:
                if isinstance(value, tuple):
                    elements.extend(_canonical_element(part)
                                    for part in value)
                else:
                    elements.append(_canonical_element(value))
                return
        elements.append(_ANY)

    flatten(expr)
    return _KeyShape(tuple(elements), is_prefix)


def _resolve_constant(node: ast.AST, project: ProjectContext,
                      owner: Optional[ClassInfo]
                      ) -> Optional[Tuple[bool, object]]:
    """``self.CONST`` / ``CONST`` -> (found, literal) via the MRO."""
    name = ""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    if not name or not name.isupper() or owner is None:
        return None
    return project.symbols.class_constant(owner.qualname, name)


class _StorageEvent:
    """One storage read or write at a concrete call site."""

    __slots__ = ("shape", "node", "owner", "where", "module")

    def __init__(self, shape: _KeyShape, node: ast.AST,
                 owner: Optional[ClassInfo], where: str, module: str):
        self.shape = shape
        self.node = node
        self.owner = owner
        self.where = where
        self.module = module


class _Helper:
    """A method that forwards a key parameter to a storage call."""

    __slots__ = ("kind", "arg_index")

    def __init__(self, kind: str, arg_index: int):
        self.kind = kind          # "write" | "read" | "prefix"
        self.arg_index = arg_index  # 0-based, self excluded


def _param_names(func: ast.AST) -> List[str]:
    args = getattr(func, "args", None)
    if args is None:
        return []
    names = [arg.arg for arg in args.args]
    if names and names[0] == "self":
        names = names[1:]
    return names


class _StorageIndex:
    """All storage reads/writes in scope, with helper forwarding."""

    def __init__(self, project: ProjectContext, scope_rule: Rule):
        self.project = project
        self.writes: List[_StorageEvent] = []
        self.reads_by_func: Dict[int, List[_StorageEvent]] = {}
        self.helpers: Dict[str, _Helper] = {}
        self._contexts = project.in_scope(scope_rule)
        self._find_helpers()
        self._collect()

    # -- pass 1: key-forwarding helpers -----------------------------------

    def _find_helpers(self) -> None:
        for owner, name, func, module in self._functions():
            params = _param_names(func)
            if not params:
                continue
            for call in self._storage_calls(func):
                kind, key = call
                if isinstance(key, ast.Name) and key.id in params:
                    self.helpers[name] = _Helper(kind,
                                                 params.index(key.id))
                    break

    # -- pass 2: concrete events ------------------------------------------

    def _collect(self) -> None:
        for owner, name, func, module in self._functions():
            params = set(_param_names(func))
            where = f"{owner.name}.{name}" if owner else name
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                event = self._event_of(node, params, owner, where, module)
                if event is None:
                    continue
                kind, record = event
                if kind == "write":
                    self.writes.append(record)
                else:
                    self.reads_by_func.setdefault(id(func),
                                                  []).append(record)

    def _event_of(self, call: ast.Call, params: Set[str],
                  owner: Optional[ClassInfo], where: str, module: str):
        resolved = self._classify(call)
        if resolved is None:
            return None
        kind, key = resolved
        if isinstance(key, ast.Name) and key.id in params:
            return None  # the helper's own body; call sites carry keys
        shape = _canonical_key(key, self.project, owner,
                               is_prefix=(kind == "prefix"))
        record = _StorageEvent(shape, call, owner, where, module)
        if kind == "write":
            return "write", record
        return "read", record

    def _classify(self, call: ast.Call):
        """(kind, key expression) of a storage-touching call, else None."""
        path = _attr_path(call.func)
        if not path or not call.args:
            return None
        attr = path[-1]
        receiver = path[:-1]
        if _is_storage_receiver(receiver):
            if attr in _WRITE_OPS:
                return "write", call.args[0]
            if attr in _READ_OPS:
                return "read", call.args[0]
            if attr == "keys":
                return "prefix", call.args[0]
        helper = self.helpers.get(attr)
        if helper is not None and receiver[:1] == ("self",) and \
                len(call.args) > helper.arg_index:
            return helper.kind, call.args[helper.arg_index]
        return None

    def _storage_calls(self, func: ast.AST):
        for node in ast.walk(func):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            path = _attr_path(node.func)
            if not path:
                continue
            attr, receiver = path[-1], path[:-1]
            if _is_storage_receiver(receiver):
                if attr in _WRITE_OPS:
                    yield "write", node.args[0]
                elif attr in _READ_OPS:
                    yield "read", node.args[0]
                elif attr == "keys":
                    yield "prefix", node.args[0]

    def _functions(self):
        """(owner ClassInfo or None, name, func node, module) in scope."""
        for ctx in self._contexts:
            symbols = self.project.symbols.modules.get(ctx.module)
            if symbols is None:
                continue
            for info in symbols.classes.values():
                for name, func in info.methods.items():
                    yield info, name, func, ctx.module
            for name, func in symbols.functions.items():
                yield None, name, func, ctx.module


class _RecoveryClosure:
    """Methods reachable from every concrete component's ``on_start``."""

    def __init__(self, project: ProjectContext, index: _StorageIndex,
                 scope_rule: Rule):
        self.project = project
        self.index = index
        self.reads: List[_StorageEvent] = []
        self.roots = 0
        self._visited: Set[tuple] = set()
        self._read_funcs: Set[int] = set()
        for ctx in project.in_scope(scope_rule):
            symbols = project.symbols.modules.get(ctx.module)
            if symbols is None:
                continue
            for info in symbols.classes.values():
                found = project.symbols.find_method(info.qualname,
                                                    "on_start")
                if found is None:
                    continue
                self.roots += 1
                owner, func = found
                self._walk(info, owner, func)

    def _walk(self, concrete: ClassInfo, defining: Optional[ClassInfo],
              func: ast.AST) -> None:
        key = (concrete.qualname,
               defining.qualname if defining else "",
               id(func))
        if key in self._visited:
            return
        self._visited.add(key)
        if id(func) not in self._read_funcs:
            self._read_funcs.add(id(func))
        self.reads.extend(self.index.reads_by_func.get(id(func), ()))
        module = defining.module if defining else concrete.module
        resolver = self.project.resolver
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                for target in resolver.resolve(node, module, concrete,
                                               defining):
                    next_concrete = target.concrete or concrete
                    self._walk(next_concrete, target.defining, target.func)
        for stmt in getattr(func, "body", ()):
            for target in resolver.method_refs(stmt, module, concrete):
                next_concrete = target.concrete or concrete
                self._walk(next_concrete, target.defining, target.func)


class _RecoveryAnalysis:
    """Shared write/read collection for both REC rules."""

    def __init__(self, project: ProjectContext, scope_rule: Rule):
        self.index = _StorageIndex(project, scope_rule)
        self.closure = _RecoveryClosure(project, self.index, scope_rule)

    @property
    def has_recovery_surface(self) -> bool:
        """False when nothing in scope defines ``on_start`` (fixtures)."""
        return self.closure.roots > 0


def _shared_analysis(project: ProjectContext,
                     scope_rule: Rule) -> _RecoveryAnalysis:
    cache = project.analysis_cache.get("recovery")
    if not isinstance(cache, _RecoveryAnalysis):
        cache = _RecoveryAnalysis(project, scope_rule)
        project.analysis_cache["recovery"] = cache
    return cache


class UnrecoveredWriteRule(Rule):
    """REC001: every durable write must be read back during recovery."""

    id = "REC001"
    name = "recovery-completeness"
    summary = ("a storage key written by protocol code is never read "
               "back on any recovery path (the on_start closure)")
    rationale = ("Figure 4's recovery is a total replay of the log; a "
                 "key that recovery never consults is state the author "
                 "thinks survives crashes but that every restart silently "
                 "drops — precisely the failure mode the crash-recovery "
                 "model exists to exclude.")
    scope = _PROTOCOL_SCOPE
    requires_project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _shared_analysis(project, self)
        if not analysis.has_recovery_surface:
            return
        recovery_reads = analysis.closure.reads
        for write in analysis.index.writes:
            if write.shape.opaque:
                continue  # nothing literal to match against
            if any(write.shape.matches(read.shape)
                   for read in recovery_reads):
                continue
            finding = project.finding(
                self.id, write.module, write.node,
                f"{write.where}: storage key {write.shape.describe()} is "
                f"written but never read back on any recovery path — "
                f"restart silently drops it (add a retrieve to the "
                f"on_start closure, or stop logging it)")
            if finding is not None:
                yield finding


class PhantomRecoveryReadRule(Rule):
    """REC002: recovery must not read keys nobody writes."""

    id = "REC002"
    name = "no-phantom-recovery-read"
    summary = ("a recovery path retrieves a storage key that no code "
               "path ever writes")
    rationale = ("A phantom read 'works' only through retrieve's default "
                 "value, which usually means the write side was renamed "
                 "or removed and recovery now silently reconstructs "
                 "nothing.")
    scope = _PROTOCOL_SCOPE
    requires_project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _shared_analysis(project, self)
        if not analysis.has_recovery_surface:
            return
        writes = analysis.index.writes
        emitted: Set[Tuple[str, int, int]] = set()
        for read in analysis.closure.reads:
            if read.shape.opaque:
                continue
            if any(read.shape.matches(write.shape) for write in writes):
                continue
            finding = project.finding(
                self.id, read.module, read.node,
                f"{read.where}: recovery reads storage key "
                f"{read.shape.describe()} that no code path writes — the "
                f"retrieve only ever returns its default")
            if finding is None:
                continue
            key = (finding.path, finding.line, finding.col)
            if key in emitted:
                continue
            emitted.add(key)
            yield finding


RECOVERY_RULES = (UnrecoveredWriteRule(), PhantomRecoveryReadRule())
