"""Message-flow conformance rules (MSG family).

Built on the whole-program graph of :mod:`repro.analysis.msgflow`.  The
paper's protocols are *defined* by which message types flow between
which handlers (Section 3.1); these rules make the two refactor
accidents that break that contract machine-checked:

* **MSG001 — dead-letter type.**  A message class is constructed and
  shipped through the transport, but no handler is ever registered for
  its tag: every copy arrives and is dropped on the floor.
* **MSG002 — dead handler.**  A handler is registered for a tag that no
  code ever sends or even constructs: the handler is unreachable, which
  usually means a refactor moved the send and stranded the receive.
* **MSG003 — payload-field mismatch.**  A statically-resolved handler
  reads an attribute of its message parameter that no constructor site
  populates (not an ``__init__`` parameter/assignment, class attribute,
  declared wire field, or method) — an ``AttributeError`` waiting for
  the first delivery.

All three skip dynamic-tag classes (``ScopedMessage``) and f-string
registrations (the scoped endpoint): a dynamically-computed tag cannot
be matched statically, so flagging it would be noise.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.engine import Finding, ProjectContext
from repro.analysis.msgflow import MessageType, build_msgflow
from repro.analysis.registry import Rule

__all__ = ["MSG_RULES", "DeadLetterTypeRule", "DeadHandlerRule",
           "PayloadFieldMismatchRule"]

_MSG_SCOPE = ("repro.core", "repro.consensus", "repro.quorum",
              "repro.multigroup", "repro.fdetect", "repro.apps",
              "repro.baselines", "repro.harness", "repro.transport",
              "repro.membership", "repro.flow")


class DeadLetterTypeRule(Rule):
    """MSG001: every shipped message type must have a handler."""

    id = "MSG001"
    name = "dead-letter-message-type"
    summary = ("a message type is sent through the transport but no "
               "handler is ever registered for its tag")
    rationale = ("Section 3.1's reception is handler-based: a tag "
                 "nobody registers for is silently dropped on every "
                 "delivery — usually a refactor that moved the "
                 "receive and stranded the send.")
    scope = _MSG_SCOPE
    requires_project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = build_msgflow(project)
        handled = graph.handled_tags()
        sent = graph.sent_tags()
        for tag, record in sorted(graph.messages.items()):
            if tag in handled or tag not in sent:
                continue
            if not self.applies_to(record.module):
                continue
            info = project.symbols.classes.get(record.qualname)
            if info is None:
                continue
            senders = sorted({edge.sender
                              for edge in graph.senders_for(tag)})
            finding = project.finding(
                self.id, record.module, info.node,
                f"message type {tag!r} ({record.class_name}) is sent by "
                f"{', '.join(senders)} but no handler is ever "
                f"registered for it: every delivery is dropped; "
                f"register a handler or delete the send path")
            if finding is not None:
                yield finding


class DeadHandlerRule(Rule):
    """MSG002: every registered tag must have a send (or construction)."""

    id = "MSG002"
    name = "dead-handler"
    summary = ("a handler is registered for a message tag that no code "
               "ever sends or constructs")
    rationale = ("An unreachable handler is a stranded receive path: "
                 "the protocol it belonged to moved on, and the "
                 "registration now documents flow that does not "
                 "exist.")
    scope = _MSG_SCOPE
    requires_project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = build_msgflow(project)
        alive = graph.sent_tags() | graph.constructed_tags()
        emitted: Set[tuple] = set()
        for edge in graph.handlers:
            if edge.tag is None or edge.tag in alive:
                continue
            if not self.applies_to(edge.module):
                continue
            key = (edge.module, edge.line, edge.tag)
            if key in emitted:
                continue
            emitted.add(key)
            ctx = project.by_module.get(edge.module)
            if ctx is None:
                continue
            yield Finding(
                self.id, ctx.path, edge.line, 0,
                f"handler {edge.handler} is registered for tag "
                f"{edge.tag!r} but nothing ever sends or constructs a "
                f"message of that type: the receive path is dead; "
                f"remove the registration or restore the send")


def _valid_payload_attrs(project: ProjectContext,
                         record: MessageType) -> Optional[Set[str]]:
    """Attribute names a handler may legitimately read off ``record``.

    Union over the MRO of: ``__init__`` parameters and ``self.<attr>``
    assignments, class-body names (``type``, ``fields``, constants),
    declared wire ``fields``, and method names.  ``None`` when no
    analyzed ``__init__`` exists anywhere — then the attribute surface
    is unknown and the rule stays silent (conservative).
    """
    table = project.symbols
    order = table.mro(record.qualname)
    if not order:
        info = table.classes.get(record.qualname)
        order = (info,) if info is not None else ()
    valid: Set[str] = set(record.fields) | {"type", "fields"}
    saw_init = False
    for info in order:
        valid.update(info.methods)
        valid.update(info.constants)
        for stmt in info.node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        valid.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                valid.add(stmt.target.id)
        init = info.methods.get("__init__")
        if init is None:
            continue
        saw_init = True
        args = getattr(init, "args", None)
        if args is not None:
            for arg in list(args.args) + list(args.kwonlyargs):
                if arg.arg != "self":
                    valid.add(arg.arg)
        for node in ast.walk(init):
            target: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                target = node.target
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                valid.add(target.attr)
    if not saw_init:
        return None
    return valid


class PayloadFieldMismatchRule(Rule):
    """MSG003: handlers may only read attributes the class populates."""

    id = "MSG003"
    name = "payload-field-mismatch"
    summary = ("a handler reads a message attribute that no constructor "
               "site populates")
    rationale = ("A payload field that exists only in the handler's "
                 "imagination raises AttributeError on the first real "
                 "delivery — after the happy-path tests that never "
                 "exercised that handler branch have passed.")
    scope = _MSG_SCOPE
    requires_project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = build_msgflow(project)
        emitted: Set[tuple] = set()
        for edge in graph.handlers:
            if edge.tag is None or edge.handler_method is None or \
                    edge.registrar_qualname is None:
                continue
            record = graph.messages.get(edge.tag)
            if record is None or not self.applies_to(edge.module):
                continue
            found = project.symbols.find_method(edge.registrar_qualname,
                                                edge.handler_method)
            if found is None:
                continue
            owner, handler = found
            valid = _valid_payload_attrs(project, record)
            if valid is None:
                continue
            args = getattr(handler, "args", None)
            if args is None:
                continue
            params: List[str] = [arg.arg for arg in args.args
                                 if arg.arg != "self"]
            if not params:
                continue
            msg_param = params[0]
            for node in ast.walk(handler):
                if not (isinstance(node, ast.Attribute) and
                        isinstance(node.value, ast.Name) and
                        node.value.id == msg_param):
                    continue
                if node.attr in valid:
                    continue
                key = (owner.module, node.lineno, node.col_offset,
                       node.attr)
                if key in emitted:
                    continue
                emitted.add(key)
                finding = project.finding(
                    self.id, owner.module, node,
                    f"handler {edge.handler} reads .{node.attr} of a "
                    f"{record.class_name} ({edge.tag!r}) but no "
                    f"constructor site populates that attribute: this "
                    f"raises AttributeError on delivery")
                if finding is not None:
                    yield finding


MSG_RULES = (DeadLetterTypeRule(), DeadHandlerRule(),
             PayloadFieldMismatchRule())
