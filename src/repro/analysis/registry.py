"""Rule registry for the protocol-aware static analyzer.

A rule is a small object that inspects one module's AST and yields
:class:`~repro.analysis.engine.Finding` objects.  Rules self-describe
(id, summary, paper rationale) so the CLI can list them and the docs can
be generated from the same source of truth.

Rules are *scoped*: each rule declares the package prefixes it applies
to (``None`` means everywhere).  The determinism family, for example,
only patrols the packages whose behaviour must be a pure function of the
seed — utilities outside the simulation boundary may use the wall clock
freely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import Finding, ModuleContext

__all__ = ["Rule", "RuleRegistry", "default_registry"]


class Rule:
    """Base class for analyzer rules.

    Class attributes
    ----------------
    id:
        Stable identifier (``DET001``, ``WAL001``, ...) used in reports
        and ``# repro: noqa(ID)`` suppressions.
    name:
        Short kebab-case name for listings.
    summary:
        One-line description of what the rule flags.
    rationale:
        Why the rule exists, anchored to the paper (section/figure).
    scope:
        Dotted package prefixes the rule patrols; ``None`` = all modules.
    exclude:
        Patterns carved *out* of the scope.  A plain dotted name excludes
        that module and its submodules; a trailing ``*`` is a name glob
        (``"repro.runtime.live*"`` excludes ``repro.runtime.live`` *and*
        ``repro.runtime.live_net``).  Exclusion is explicit configuration
        — preferred over blanket ``# repro: noqa`` comments when a whole
        module legitimately sits outside a rule's contract (see
        docs/ANALYSIS.md).
    """

    id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""
    scope: Optional[Tuple[str, ...]] = None
    exclude: Tuple[str, ...] = ()
    #: Project rules see every analyzed module at once (symbol table,
    #: call graph) and implement :meth:`check_project` instead of
    #: :meth:`check`; ``scope`` then selects their analysis *roots*.
    requires_project: bool = False

    @staticmethod
    def _matches(module: str, pattern: str) -> bool:
        if pattern.endswith("*"):
            return module.startswith(pattern[:-1])
        return module == pattern or module.startswith(pattern + ".")

    def applies_to(self, module: str) -> bool:
        """True if ``module`` (dotted name) falls inside the rule's scope."""
        if any(self._matches(module, pattern) for pattern in self.exclude):
            return False
        if self.scope is None:
            return True
        return any(module == prefix or module.startswith(prefix + ".")
                   for prefix in self.scope)

    def check(self, ctx: "ModuleContext") -> Iterator["Finding"]:
        """Yield findings for one module (override in subclasses)."""
        raise NotImplementedError  # pragma: no cover

    def check_project(self, project) -> Iterator["Finding"]:
        """Yield findings for a whole project (project rules only)."""
        raise NotImplementedError  # pragma: no cover


class RuleRegistry:
    """Ordered collection of rules, addressable by id."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        """Add one rule; duplicate ids are a configuration error."""
        if not rule.id:
            raise AnalysisError(f"rule {type(rule).__name__} has no id")
        if rule.id in self._rules:
            raise AnalysisError(f"duplicate rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    def get(self, rule_id: str) -> Rule:
        """The rule registered under ``rule_id`` (raises if unknown)."""
        try:
            return self._rules[rule_id]
        except KeyError:
            raise AnalysisError(f"unknown rule id {rule_id!r}") from None

    def rules(self) -> List[Rule]:
        """All rules, in registration order."""
        return list(self._rules.values())

    def ids(self) -> List[str]:
        return list(self._rules)

    def select(self, ids: Optional[Iterable[str]] = None) -> List[Rule]:
        """The subset named by ``ids`` (or everything when ``None``)."""
        if ids is None:
            return self.rules()
        return [self.get(rule_id) for rule_id in ids]

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules


def default_registry() -> RuleRegistry:
    """The registry holding every built-in rule family."""
    # Imported here so the registry module stays import-cycle-free.
    from repro.analysis.aliasing import ALIASING_RULES
    from repro.analysis.atomicity import ATOMICITY_RULES
    from repro.analysis.determinism import DETERMINISM_RULES
    from repro.analysis.idempotence import IDEMPOTENCE_RULES
    from repro.analysis.msgrules import MSG_RULES
    from repro.analysis.noqarules import NOQA_RULES
    from repro.analysis.recovery import RECOVERY_RULES
    from repro.analysis.resources import RES_RULES
    from repro.analysis.simrules import SIM_RULES
    from repro.analysis.wal import WAL_RULES

    registry = RuleRegistry()
    for rule in (*DETERMINISM_RULES, *WAL_RULES, *RECOVERY_RULES,
                 *ATOMICITY_RULES, *ALIASING_RULES, *IDEMPOTENCE_RULES,
                 *SIM_RULES, *MSG_RULES, *RES_RULES, *NOQA_RULES):
        registry.register(rule)
    return registry
