"""Analyzer engine: parse modules, run rules, honour suppressions.

The engine is AST-only — no imports of the code under analysis — so it
can lint a broken working tree and runs in seconds as a CI gate.  Rules
come in two shapes:

* **module rules** inspect one file at a time (``check(ctx)``);
* **project rules** (``requires_project = True``) see every analyzed
  module at once through a :class:`ProjectContext` — symbol table, call
  graph — and implement ``check_project(project)``.  ``analyze_source``
  wraps a single module in a one-module project so fixture tests can
  drive them the same way.

Suppressions
------------
A finding is suppressed by a comment on the flagged line::

    delay = random.random()  # repro: noqa(DET004) -- reviewed: seeded upstream

``# repro: noqa`` with no rule list suppresses every rule on that line.
The text after ``--`` is a free-form justification; reviewers should
treat a bare suppression (no justification) as a smell.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.registry import Rule, RuleRegistry, default_registry
from repro.errors import AnalysisError

__all__ = ["Finding", "ModuleContext", "ProjectContext", "Report",
           "analyze_source", "analyze_paths", "iter_python_files",
           "module_name_for_path"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\(\s*(?P<rules>[A-Za-z0-9_,\s]+)\s*\))?")

#: The ``--`` justification that must follow a noqa (NOQ001's contract).
_JUSTIFIED_RE = re.compile(r"\s*--\s*\S")

_ALL_RULES = "*"
#: Marker for an *unjustified* blanket noqa: suppresses everything
#: except NOQ001, which must be able to flag the bare comment itself.
_ALL_BUT_NOQA = "*-noqa"
_NOQA_RULE_ID = "NOQ001"


class Finding:
    """One rule violation at a source location."""

    __slots__ = ("rule_id", "path", "line", "col", "message")

    def __init__(self, rule_id: str, path: str, line: int, col: int,
                 message: str):
        self.rule_id = rule_id
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule_id, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Finding {self.rule_id} {self.location()}>"


class ModuleContext:
    """Everything a rule needs to inspect one module."""

    __slots__ = ("module", "path", "tree", "source", "lines")

    def __init__(self, module: str, path: str, tree: ast.Module,
                 source: str):
        self.module = module
        self.path = path
        self.tree = tree
        self.source = source
        self.lines = source.splitlines()

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(rule_id, self.path,
                       getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0), message)


class ProjectContext:
    """Every analyzed module at once, for whole-program rules."""

    def __init__(self, contexts: Sequence[ModuleContext]):
        self.contexts = list(contexts)
        self.by_module: Dict[str, ModuleContext] = {
            ctx.module: ctx for ctx in self.contexts}
        self._symbols: Optional[object] = None
        self._resolver: Optional[object] = None
        #: Scratch space for rule families that share one expensive
        #: whole-program pass (e.g. the REC rules' recovery closure),
        #: keyed by family name.
        self.analysis_cache: Dict[str, object] = {}

    @property
    def symbols(self):
        """Lazily-built project symbol table."""
        if self._symbols is None:
            from repro.analysis.symbols import SymbolTable
            self._symbols = SymbolTable(
                (ctx.module, ctx.path, ctx.tree) for ctx in self.contexts)
        return self._symbols

    @property
    def resolver(self):
        """Lazily-built call resolver over :attr:`symbols`."""
        if self._resolver is None:
            from repro.analysis.callgraph import CallResolver
            self._resolver = CallResolver(self.symbols)
        return self._resolver

    def in_scope(self, rule: Rule) -> List[ModuleContext]:
        """The modules a project rule should treat as analysis roots."""
        return [ctx for ctx in self.contexts if rule.applies_to(ctx.module)]

    def finding(self, rule_id: str, module: str, node: ast.AST,
                message: str) -> Optional[Finding]:
        """Finding anchored at ``node`` in ``module`` (None if unknown)."""
        ctx = self.by_module.get(module)
        if ctx is None:
            return None
        return ctx.finding(rule_id, node, message)


class Report:
    """Outcome of one analyzer run."""

    __slots__ = ("findings", "files_analyzed")

    def __init__(self, findings: List[Finding], files_analyzed: int):
        self.findings = findings
        self.files_analyzed = files_analyzed

    @property
    def clean(self) -> bool:
        return not self.findings


def _suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> suppressed rule ids (``*`` = all)."""
    table: Dict[int, Set[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            selected = {_ALL_RULES}
        else:
            selected = {part.strip().upper()
                        for part in rules.split(",") if part.strip()}
        if not _JUSTIFIED_RE.match(line[match.end():]):
            # An unjustified noqa must not suppress NOQ001 — the rule
            # that flags exactly this comment.
            selected.discard(_NOQA_RULE_ID)
            if _ALL_RULES in selected:
                selected = (selected - {_ALL_RULES}) | {_ALL_BUT_NOQA}
        table[number] = selected
    return table


def module_name_for_path(path: str) -> str:
    """Dotted module name, anchored at the innermost ``repro`` directory.

    ``/repo/src/repro/sim/kernel.py`` -> ``repro.sim.kernel``.  Files
    outside a ``repro`` tree fall back to their stem, which simply means
    only unscoped rules apply to them.
    """
    normalized = os.path.normpath(os.path.abspath(path))
    parts = normalized.split(os.sep)
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    anchors = [i for i, part in enumerate(parts[:-1]) if part == "repro"]
    if not anchors:
        return stem
    tail = parts[anchors[-1]:-1] + ([] if stem == "__init__" else [stem])
    return ".".join(tail)


def _parse_context(source: str, module: str, path: str) -> ModuleContext:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(
            f"{path}:{exc.lineno}: cannot parse: {exc.msg}") from exc
    return ModuleContext(module, path, tree, source)


def _live_filter(contexts: Sequence[ModuleContext]):
    """A ``live(finding) -> bool`` predicate honouring noqa comments."""
    suppressed: Dict[str, Dict[int, Set[str]]] = {
        ctx.path: _suppressions(ctx.lines) for ctx in contexts}

    def live(finding: Finding) -> bool:
        allowed = suppressed.get(finding.path, {}).get(finding.line, ())
        if _ALL_RULES in allowed or finding.rule_id in allowed:
            return False
        return not (_ALL_BUT_NOQA in allowed and
                    finding.rule_id != _NOQA_RULE_ID)

    return live


def _module_findings(ctx: ModuleContext,
                     registry: RuleRegistry) -> Iterator[Finding]:
    for rule in registry.rules():
        if rule.requires_project or not rule.applies_to(ctx.module):
            continue
        yield from rule.check(ctx)


def _project_findings(contexts: Sequence[ModuleContext],
                      registry: RuleRegistry) -> Iterator[Finding]:
    project_rules = [rule for rule in registry.rules()
                     if rule.requires_project]
    if not project_rules:
        return
    project = ProjectContext(contexts)
    for rule in project_rules:
        yield from rule.check_project(project)


def _run_rules(contexts: Sequence[ModuleContext],
               registry: RuleRegistry) -> List[Finding]:
    """Module rules per file, project rules once, suppressions applied."""
    live = _live_filter(contexts)
    findings: List[Finding] = []
    for ctx in contexts:
        findings.extend(f for f in _module_findings(ctx, registry)
                        if live(f))
    findings.extend(f for f in _project_findings(contexts, registry)
                    if live(f))
    findings.sort(key=Finding.sort_key)
    return findings


def _module_rule_worker(filepaths: Sequence[str]) -> List[Finding]:
    """Pool target: parse a batch of files and run the module rules.

    Each worker process re-reads and re-parses its batch (ASTs don't
    cross process boundaries cheaply) and applies suppressions locally,
    so the driver only merges finished ``Finding`` lists.  The driver
    has already parsed every file, so errors here are unexpected and
    propagate as-is.
    """
    registry = default_registry()
    findings: List[Finding] = []
    for filepath in filepaths:
        with open(filepath, encoding="utf-8") as handle:
            source = handle.read()
        ctx = _parse_context(source, module_name_for_path(filepath),
                             filepath)
        live = _live_filter([ctx])
        findings.extend(f for f in _module_findings(ctx, registry)
                        if live(f))
    return findings


def _run_rules_parallel(contexts: Sequence[ModuleContext],
                        registry: RuleRegistry,
                        jobs: int) -> List[Finding]:
    """Fan the per-file module rules out to a process pool.

    The whole-program rules cannot be split (they need every AST at
    once), so the driver runs them while the pool chews through the
    module rules; the merged result is sorted with the same key as the
    serial path and is byte-identical to it.
    """
    import multiprocessing

    batches = [[ctx.path for ctx in contexts[i::jobs]]
               for i in range(jobs)]
    batches = [batch for batch in batches if batch]
    with multiprocessing.Pool(len(batches)) as pool:
        pending = pool.map_async(_module_rule_worker, batches)
        live = _live_filter(contexts)
        findings = [f for f in _project_findings(contexts, registry)
                    if live(f)]
        for batch_findings in pending.get():
            findings.extend(batch_findings)
    findings.sort(key=Finding.sort_key)
    return findings


def analyze_source(source: str, *, module: str = "<string>",
                   path: str = "<string>",
                   registry: Optional[RuleRegistry] = None) -> List[Finding]:
    """Run every applicable rule over ``source``; returns live findings.

    Project rules see a one-module project: cross-module resolution is
    unavailable, which is exactly what fixture tests want.
    """
    if registry is None:
        registry = default_registry()
    ctx = _parse_context(source, module, path)
    return _run_rules([ctx], registry)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a deterministic list of ``.py`` files.

    Every invalid argument is collected before raising, so a user fixing
    a long command line sees all the bad paths at once, not one per run.
    """
    paths = list(paths)
    missing = [path for path in paths
               if not os.path.isfile(path) and not os.path.isdir(path)]
    if missing:
        raise AnalysisError("no such file or directory: " +
                            ", ".join(repr(path) for path in missing))
    for path in paths:
        if os.path.isfile(path):
            yield path
        else:
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames
                               if d not in ("__pycache__", ".git")]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)


def analyze_paths(paths: Iterable[str], *,
                  registry: Optional[RuleRegistry] = None,
                  jobs: int = 1) -> Report:
    """Analyze every python file under ``paths``.

    ``jobs > 1`` runs the per-file module rules in a process pool (the
    report is byte-identical to a serial run).  Workers rebuild the
    default registry, so a *custom* registry forces the serial path —
    silently, because the result is the same either way.
    """
    custom_registry = registry is not None
    if registry is None:
        registry = default_registry()
    contexts: List[ModuleContext] = []
    for filepath in iter_python_files(paths):
        with open(filepath, encoding="utf-8") as handle:
            source = handle.read()
        contexts.append(_parse_context(
            source, module_name_for_path(filepath), filepath))
    if jobs > 1 and len(contexts) > 1 and not custom_registry:
        return Report(_run_rules_parallel(contexts, registry, jobs),
                      len(contexts))
    return Report(_run_rules(contexts, registry), len(contexts))
