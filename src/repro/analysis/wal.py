"""Crash-recovery write-ahead-logging rules (WAL family).

The paper's central logging discipline (Sections 5.1–5.3): state a
message *depends on* must reach stable storage before the message is
sent, otherwise a crash between the send and the (never-happening) log
leaves the cluster having observed state the sender no longer holds on
recovery.

Protocol classes opt in by declaring the volatile mirrors of their
durable state in a ``VOLATILE_FIELDS`` class attribute — see
:data:`repro.analysis.symbols.VOLATILE_DECLARATION` and the catalogue in
docs/ANALYSIS.md for the convention; the analyzer reads the declarations
straight from each class (and, interprocedurally, from its whole MRO),
so there is no second copy of any field list to drift out of date.

Two rules patrol the discipline at different depths:

* **WAL001** is the intraprocedural contract: within one method, a
  mutation of a declared field must reach a stable-storage write before
  any transport send.  It runs on the per-function CFG with a worklist
  fixpoint, so branches, loops and try/finally are handled by graph
  reachability rather than ad-hoc walking.  Helper calls are opaque
  (apart from the declared ``self._store``/``self.take_checkpoint``
  barrier helpers), so "mutate and log inside the same helper" is the
  clean pattern.
* **WAL003** is the interprocedural contract: it resolves helper calls
  through the project call graph (``self.helper()`` through the concrete
  class's MRO, ``self.attr.m()`` through ``__init__`` annotations) and
  summarizes each callee — which fields it leaves dirty, whether it
  always writes a barrier, whether it can send before one.  A spawned
  generator (``node.spawn(self._gossip_task(), ...)``) counts as a send
  if the task can send before a barrier: the task body runs with
  whatever dirt the spawner left behind.  Mutations whose value derives
  from stable storage (``retrieve``/``_load`` reads, values just passed
  to a log call) are *clean* — refilling a volatile cache from the log
  is recovery, not new state.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import CFG, CFGNode, build_cfg
from repro.analysis.dataflow import (ForwardProblem, SetUnionProblem,
                                     solve_forward)
from repro.analysis.engine import Finding, ModuleContext, ProjectContext
from repro.analysis.registry import Rule
from repro.analysis.symbols import VOLATILE_DECLARATION, ClassInfo

__all__ = ["WAL_RULES", "VOLATILE_DECLARATION"]

#: Receiver-name tokens that identify a raw transport medium (WAL002).
_RAW_MEDIUM_TOKENS = frozenset({"network", "medium", "transport", "channel",
                                "link", "net"})

_BARRIER_OPS = frozenset({"log", "append", "delete", "delete_prefix",
                          "flush", "sync"})
_SELF_BARRIERS = frozenset({"_store", "take_checkpoint"})
_SEND_OPS = frozenset({"send", "multisend"})
_SEND_RECEIVERS = ("endpoint", "network", "transport")
_MUTATORS = frozenset({"append", "add", "update", "pop", "popitem", "clear",
                       "remove", "discard", "extend", "insert",
                       "setdefault", "sort"})

#: Calls whose return value derives from stable storage (clean sources).
_RETRIEVE_OPS = frozenset({"retrieve", "retrieve_list", "_load", "get"})
#: Pure shape/coercion builtins: clean in, clean out.
_CLEAN_BUILTINS = frozenset({"int", "float", "str", "bool", "tuple", "list",
                             "dict", "set", "frozenset", "len", "min", "max",
                             "sorted", "abs"})

_OPAQUE_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

#: Pseudo-field standing for "dirt inherited from the caller" in
#: summary-mode dataflow runs.
_INHERITED = "<inherited>"


def _attr_path(node: ast.AST) -> Tuple[str, ...]:
    parts: list = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _self_field(node: ast.AST) -> str:
    """``self.f`` or ``self.f[...]`` -> ``"f"`` (else ``""``)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    path = _attr_path(node)
    if len(path) == 2 and path[0] == "self":
        return path[1]
    return ""


def _position(node: ast.AST) -> Tuple[int, int]:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def _event_roots(stmt: ast.AST) -> Optional[List[ast.AST]]:
    """Sub-expressions of a CFG node to scan for events.

    ``None`` means "the whole statement"; compound headers contribute
    only their test/iterable — their bodies are separate CFG nodes.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    return None


class _Event:
    """One ordered action inside a statement."""

    __slots__ = ("kind", "field", "names", "value", "node")

    def __init__(self, kind: str, node: ast.AST, field: str = "",
                 names: Tuple[str, ...] = (),
                 value: Optional[ast.AST] = None):
        self.kind = kind      # mutate | bind | barrier | send | call
        self.field = field
        self.names = names
        self.value = value
        self.node = node

    def position(self) -> Tuple[int, int]:
        return _position(self.node)


def _call_events(root: ast.AST) -> List[_Event]:
    """Barrier/send/call events for every call under ``root``."""
    events: List[_Event] = []
    for node in ast.walk(root):
        if not isinstance(node, ast.Call):
            continue
        path = _attr_path(node.func)
        attr = path[-1] if path else ""
        receiver = path[:-1]
        if attr in _BARRIER_OPS and \
                any("storage" in part or part == "store"
                    for part in receiver):
            events.append(_Event("barrier", node))
        elif attr in _SELF_BARRIERS and receiver[:1] == ("self",):
            events.append(_Event("barrier", node))
        elif attr in _SEND_OPS and \
                any(part in _SEND_RECEIVERS for part in receiver):
            events.append(_Event("send", node))
        elif attr in _MUTATORS and len(path) == 3 and path[0] == "self":
            events.append(_Event("mutate", node, field=path[1]))
        else:
            events.append(_Event("call", node))
    return events


def _assignment_events(stmt: ast.stmt) -> List[_Event]:
    """Mutate (self-field) and bind (local name) events of one statement."""
    events: List[_Event] = []
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        if isinstance(stmt, ast.Assign):
            targets: Sequence[ast.expr] = stmt.targets
            value: Optional[ast.AST] = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        else:  # AugAssign: the new value depends on the old — never clean
            targets, value = [stmt.target], None
        for target in targets:
            elts = target.elts if isinstance(target, (ast.Tuple, ast.List)) \
                else [target]
            for elt in elts:
                field = _self_field(elt)
                if field:
                    events.append(_Event("mutate", elt, field=field,
                                         value=value))
                elif isinstance(elt, ast.Name):
                    events.append(_Event("bind", elt, names=(elt.id,),
                                         value=value))
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            field = _self_field(target)
            if field:
                events.append(_Event("mutate", target, field=field))
    return events


def _node_events(cfg_node: CFGNode) -> List[_Event]:
    """Source-ordered events of one CFG node (empty for opaque nodes)."""
    stmt = cfg_node.stmt
    if stmt is None or isinstance(stmt, _OPAQUE_STMTS):
        return []
    roots = _event_roots(stmt)
    if roots is None:
        events = _assignment_events(stmt) + _call_events(stmt)
    else:
        events = []
        for root in roots:
            events.extend(_call_events(root))
    events.sort(key=_Event.position)
    return events


def _declared_fields(class_node: ast.ClassDef) -> Set[str]:
    """The class's own ``VOLATILE_FIELDS`` declaration (no inheritance)."""
    for stmt in class_node.body:
        targets: Sequence[ast.expr] = ()
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) \
                    and target.id == VOLATILE_DECLARATION \
                    and isinstance(value, (ast.Tuple, ast.List)):
                return {elt.value for elt in value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)}
    return set()


def _dirty_description(dirty: frozenset) -> str:
    """``'f' (mutated line N)`` per field, earliest mutation first."""
    earliest: Dict[str, int] = {}
    for field, line in dirty:
        if field == _INHERITED:
            continue
        if field not in earliest or line < earliest[field]:
            earliest[field] = line
    return ", ".join(f"{name!r} (mutated line {line})"
                     for name, line in sorted(earliest.items()))


# -- WAL001: intraprocedural log-before-send ---------------------------------

class _Wal001Problem(SetUnionProblem):
    """State: frozenset of (field, mutation line)."""

    def __init__(self, fields: Set[str],
                 events: Dict[int, List[_Event]]):
        self.fields = fields
        self.events = events

    def transfer(self, node: CFGNode, state):
        for event in self.events.get(node.index, ()):
            if event.kind == "mutate" and event.field in self.fields:
                state = state | {(event.field, event.position()[0])}
            elif event.kind == "barrier":
                state = frozenset()
        return state


class WriteAheadSendRule(Rule):
    """WAL001: log volatile-mirror mutations before dependent sends."""

    id = "WAL001"
    name = "log-before-send"
    summary = ("a transport send is reachable after mutating a declared "
               "volatile field with no stable-storage write in between")
    rationale = ("Sections 5.1–5.3: a process must never send a message "
                 "that depends on state it could forget across a crash; "
                 "e.g. an acceptor must log (promised, accepted) before "
                 "answering, or a recovered incarnation could un-promise "
                 "and break Uniform Agreement.")
    scope = ("repro.core", "repro.consensus", "repro.membership")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for class_node in ctx.tree.body:
            if not isinstance(class_node, ast.ClassDef):
                continue
            fields = _declared_fields(class_node)
            if not fields:
                continue
            for item in class_node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_method(ctx, class_node, item,
                                                  fields)

    def _check_method(self, ctx: ModuleContext, class_node: ast.ClassDef,
                      method: ast.AST, fields: Set[str]) -> Iterator[Finding]:
        cfg = build_cfg(method)
        events = {node.index: _node_events(node) for node in cfg.nodes}
        problem = _Wal001Problem(fields, events)
        states = solve_forward(cfg, problem)
        findings: Dict[Tuple[int, int], Finding] = {}
        for node in cfg.nodes:
            if node.index not in states:
                continue  # unreachable
            dirty = states[node.index]
            for event in events[node.index]:
                if event.kind == "mutate" and event.field in fields:
                    dirty = dirty | {(event.field, event.position()[0])}
                elif event.kind == "barrier":
                    dirty = frozenset()
                elif event.kind == "send" and dirty:
                    position = event.position()
                    if position not in findings:
                        findings[position] = ctx.finding(
                            self.id, event.node,
                            f"{class_node.name}."
                            f"{getattr(method, 'name', '<method>')}: "
                            f"transport send reachable after mutating "
                            f"volatile field(s) {_dirty_description(dirty)} "
                            f"with no stable-storage write in between")
        for position in sorted(findings):
            yield findings[position]


# -- WAL003: interprocedural persist-before-send ------------------------------

def _is_clean(expr: Optional[ast.AST], clean: frozenset) -> bool:
    """True if ``expr``'s value cannot carry unlogged volatile state.

    Clean sources: constants, names proven clean on this path, reads of
    ``self`` attributes, stable-storage reads (``retrieve``/``_load``),
    and pure coercions/containers of clean values.  Arithmetic
    (``retrieve(...) + 1``) is *not* clean — the result differs from
    anything on disk.
    """
    if expr is None:
        return False
    if isinstance(expr, ast.Constant):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in clean
    if isinstance(expr, ast.Attribute):
        path = _attr_path(expr)
        return bool(path) and path[0] == "self"
    if isinstance(expr, ast.Subscript):
        return _is_clean(expr.value, clean)
    if isinstance(expr, ast.Starred):
        return _is_clean(expr.value, clean)
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        return all(_is_clean(elt, clean) for elt in expr.elts)
    if isinstance(expr, ast.Dict):
        return all(_is_clean(key, clean) for key in expr.keys
                   if key is not None) and \
            all(_is_clean(value, clean) for value in expr.values)
    if isinstance(expr, ast.IfExp):
        return _is_clean(expr.body, clean) and _is_clean(expr.orelse, clean)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr in _RETRIEVE_OPS:
            return True
        if isinstance(func, ast.Name) and func.id in _CLEAN_BUILTINS:
            return all(_is_clean(arg, clean) for arg in expr.args)
        return False
    return False


class _Summary:
    """Effect summary of one (concrete class, method) pair."""

    __slots__ = ("exit_dirty", "must_barrier", "sends_before_barrier")

    def __init__(self, exit_dirty: frozenset, must_barrier: bool,
                 sends_before_barrier: bool):
        #: Declared fields possibly left dirty when the callee returns.
        self.exit_dirty = exit_dirty
        #: True if every path through the callee writes a barrier.
        self.must_barrier = must_barrier
        #: True if a send is reachable while caller-inherited dirt is
        #: still unlogged.
        self.sends_before_barrier = sends_before_barrier


_NEUTRAL = _Summary(frozenset(), False, False)


class _FunctionRun:
    """Per-function analysis context (one concrete class, one method)."""

    __slots__ = ("module", "concrete", "defining", "fields", "mode",
                 "sends_before", "emit")

    def __init__(self, module: str, concrete: Optional[ClassInfo],
                 defining: Optional[ClassInfo], fields: frozenset,
                 mode: str, emit=None):
        self.module = module
        self.concrete = concrete
        self.defining = defining
        self.fields = fields
        self.mode = mode
        self.sends_before = False
        self.emit = emit


class _WalProblem(ForwardProblem):
    """State: (dirty frozenset of (field, line), clean frozenset of names)."""

    def __init__(self, analysis: "_InterProc", run: _FunctionRun,
                 events: Dict[int, List[_Event]]):
        self.analysis = analysis
        self.run = run
        self.events = events

    def initial(self):
        dirty = frozenset({(_INHERITED, 0)}) \
            if self.run.mode == "summary" else frozenset()
        return (dirty, frozenset())

    def join(self, left, right):
        return (left[0] | right[0], left[1] & right[1])

    def transfer(self, node: CFGNode, state):
        return self.analysis.walk(self.events.get(node.index, ()),
                                  state, self.run, emit=False)


class _InterProc:
    """Summary-based interprocedural persist-before-send analysis."""

    def __init__(self, project: ProjectContext):
        self.project = project
        self.symbols = project.symbols
        self.resolver = project.resolver
        self.summaries: Dict[tuple, _Summary] = {}
        self.in_progress: Set[tuple] = set()
        self.resolution_cache: Dict[tuple, list] = {}

    # -- call resolution ---------------------------------------------------

    def resolve(self, call: ast.Call, run: _FunctionRun) -> list:
        key = (id(call),
               run.concrete.qualname if run.concrete else "",
               run.defining.qualname if run.defining else "")
        cached = self.resolution_cache.get(key)
        if cached is None:
            cached = self.resolver.resolve(call, run.module, run.concrete,
                                           run.defining)
            self.resolution_cache[key] = cached
        return cached

    # -- summaries ---------------------------------------------------------

    def summary_of(self, resolved) -> _Summary:
        key = resolved.key()
        cached = self.summaries.get(key)
        if cached is not None:
            return cached
        if key in self.in_progress:
            return _NEUTRAL  # recursion: assume nothing
        self.in_progress.add(key)
        try:
            summary = self._compute_summary(resolved)
        finally:
            self.in_progress.discard(key)
        self.summaries[key] = summary
        return summary

    def _compute_summary(self, resolved) -> _Summary:
        concrete = resolved.concrete
        defining = resolved.defining
        module = defining.module if defining is not None else \
            (concrete.module if concrete is not None else "")
        if not module:
            # A module-level function: find its home for import context.
            for name, symbols in self.symbols.modules.items():
                if resolved.func in symbols.functions.values():
                    module = name
                    break
        fields = frozenset(self.symbols.volatile_fields(concrete.qualname)) \
            if concrete is not None else frozenset()
        run = _FunctionRun(module, concrete, defining, fields, "summary")
        states, cfg = self._solve(resolved.func, run)
        exit_state = states.get(cfg.exit.index)
        if exit_state is None:
            # The function never returns (while True service loop):
            # nothing flows back to the caller.
            return _Summary(frozenset(), True, run.sends_before)
        dirty_fields = {field for field, _ in exit_state[0]}
        return _Summary(
            frozenset(dirty_fields - {_INHERITED}),
            _INHERITED not in dirty_fields,
            run.sends_before)

    # -- the core walk -----------------------------------------------------

    def _solve(self, func: ast.AST, run: _FunctionRun):
        cfg = build_cfg(func)
        events = {node.index: _node_events(node) for node in cfg.nodes}
        problem = _WalProblem(self, run, events)
        states = solve_forward(cfg, problem)
        if run.emit is not None:
            for node in cfg.nodes:
                if node.index in states:
                    self.walk(events[node.index], states[node.index], run,
                              emit=True)
        return states, cfg

    def analyze_root(self, module: str, concrete: ClassInfo,
                     defining: ClassInfo, func: ast.AST, emit) -> None:
        fields = frozenset(self.symbols.volatile_fields(concrete.qualname))
        run = _FunctionRun(module, concrete, defining, fields, "root",
                          emit=emit)
        self._solve(func, run)

    def walk(self, events: Sequence[_Event], state, run: _FunctionRun,
             emit: bool):
        dirty, clean = state
        for event in events:
            if event.kind == "mutate":
                if event.field in run.fields and \
                        not _is_clean(event.value, clean):
                    dirty = dirty | {(event.field, event.position()[0])}
            elif event.kind == "bind":
                if _is_clean(event.value, clean):
                    clean = clean | frozenset(event.names)
                else:
                    clean = clean - frozenset(event.names)
            elif event.kind == "barrier":
                dirty = frozenset()
                logged = frozenset(
                    arg.id for arg in event.node.args
                    if isinstance(arg, ast.Name))
                clean = clean | logged
            elif event.kind == "send":
                self._note_send(event, dirty, run, emit, callee=None)
            elif event.kind == "call":
                dirty, clean = self._apply_call(event, dirty, clean, run,
                                                emit)
        return (dirty, clean)

    def _apply_call(self, event: _Event, dirty, clean, run: _FunctionRun,
                    emit: bool):
        targets = self.resolve(event.node, run)
        if not targets:
            return dirty, clean  # opaque: unknown code, assume no effects
        summaries = [self.summary_of(target) for target in targets]
        if dirty and any(s.sends_before_barrier for s in summaries):
            sender = next(target for target, s in zip(targets, summaries)
                          if s.sends_before_barrier)
            self._note_send(event, dirty, run, emit, callee=sender)
        if all(s.must_barrier for s in summaries):
            dirty = frozenset()
        line = event.position()[0]
        for target, summary in zip(targets, summaries):
            if target.receiver == "self":
                dirty = dirty | {(field, line)
                                 for field in summary.exit_dirty}
        return dirty, clean

    def _note_send(self, event: _Event, dirty, run: _FunctionRun,
                   emit: bool, callee) -> None:
        if not dirty:
            return
        if run.mode == "summary":
            if any(field == _INHERITED for field, _ in dirty):
                run.sends_before = True
            return
        if not emit or run.emit is None:
            return
        description = _dirty_description(dirty)
        if not description:
            return
        owner = run.defining.name if run.defining else "<module>"
        where = f"{owner}.{getattr(run.emit, 'func_name', '?')}"
        if run.concrete is not None and run.concrete.name != owner:
            where += f" (analyzed as {run.concrete.name})"
        if callee is None:
            message = (f"{where}: transport send reachable with volatile "
                       f"field(s) {description} unlogged on some path")
        else:
            message = (f"{where}: call to {callee.name}() can send before "
                       f"any stable-storage write while volatile field(s) "
                       f"{description} are dirty")
        run.emit(run, event.node, message)


class InterprocWalRule(Rule):
    """WAL003: flow-sensitive persist-before-send across helpers."""

    id = "WAL003"
    name = "persist-before-send"
    summary = ("on some path, a volatile-field mutation reaches a "
               "transport send (possibly through helpers or a spawned "
               "task) with no stable-storage write in between")
    rationale = ("Figures 2/3 log *then* broadcast; a helper boundary "
                 "does not change the crash window.  Resolving calls "
                 "through the concrete class's MRO is what lets the rule "
                 "see that on_start's spawned gossip task advertises the "
                 "incarnation counter, so the counter must be logged "
                 "before the spawn.")
    scope = ("repro.core", "repro.consensus", "repro.membership")
    requires_project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        wal001 = WriteAheadSendRule()
        taken: Set[Tuple[str, int, int]] = set()
        for ctx in project.in_scope(wal001):
            for finding in wal001.check(ctx):
                taken.add((finding.path, finding.line, finding.col))
        interproc = _InterProc(project)
        findings: Dict[Tuple[str, int, int], Finding] = {}

        def emit(run: _FunctionRun, node: ast.AST, message: str) -> None:
            anchor_module = run.defining.module if run.defining else \
                run.module
            finding = project.finding(self.id, anchor_module, node, message)
            if finding is None:
                return
            key = (finding.path, finding.line, finding.col)
            if key in taken or key in findings:
                return
            findings[key] = finding

        for ctx in project.in_scope(self):
            symbols = project.symbols.modules.get(ctx.module)
            if symbols is None:
                continue
            for class_info in symbols.classes.values():
                fields = project.symbols.volatile_fields(class_info.qualname)
                if not fields:
                    continue
                methods: Dict[str, Tuple[ClassInfo, ast.AST]] = {}
                for ancestor in project.symbols.mro(class_info.qualname):
                    for name, func in ancestor.methods.items():
                        methods.setdefault(name, (ancestor, func))
                for name in sorted(methods):
                    owner, func = methods[name]
                    run_emit = _NamedEmit(emit, name)
                    interproc.analyze_root(owner.module, class_info, owner,
                                           func, run_emit)
        for key in sorted(findings):
            yield findings[key]


class _NamedEmit:
    """Binds the analyzed method's name into emitted messages."""

    __slots__ = ("emit", "func_name")

    def __init__(self, emit, func_name: str):
        self.emit = emit
        self.func_name = func_name

    def __call__(self, run, node, message):
        self.emit(run, node, message)


class DirectTransportSendRule(Rule):
    """WAL002: protocol code must send through its Endpoint component."""

    id = "WAL002"
    name = "no-raw-transport-send"
    summary = ("a protocol module calls send/multisend directly on a "
               "transport medium instead of going through its Endpoint")
    rationale = ("The endpoint sits above whatever TransportMedium the "
                 "harness wired in — in particular the stubborn channel "
                 "layer that turns the paper's fair-lossy links into "
                 "reliable ones via ack/retransmit.  A protocol that grabs "
                 "the raw medium (node.network.send(...)) silently opts "
                 "out of retransmission, so one dropped datagram becomes "
                 "a protocol-level message loss the verifier cannot "
                 "explain.")
    scope = ("repro.core", "repro.consensus", "repro.quorum",
             "repro.multigroup", "repro.fdetect", "repro.apps",
             "repro.baselines", "repro.membership", "repro.flow")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = _attr_path(node.func)
            if len(path) < 2 or path[-1] not in _SEND_OPS:
                continue
            receiver = path[:-1]
            if "endpoint" in receiver[-1]:
                continue  # the sanctioned path
            if any(token in part for part in receiver
                   for token in _RAW_MEDIUM_TOKENS):
                yield ctx.finding(
                    self.id, node,
                    f"direct {'.'.join(path)}(...) bypasses the endpoint "
                    f"(and any stubborn-channel layer beneath it); send "
                    f"through the node's Endpoint component instead")


WAL_RULES = (WriteAheadSendRule(), DirectTransportSendRule(),
             InterprocWalRule())
