"""Crash-recovery write-ahead-logging rules (WAL family).

The paper's central logging discipline (Sections 5.1–5.3): state a
message *depends on* must reach stable storage before the message is
sent, otherwise a crash between the send and the (never-happening) log
leaves the cluster having observed state the sender no longer holds on
recovery.  Formal treatments of atomic broadcast check exactly this kind
of invariant with proof assistants; here we settle for a conservative
intraprocedural dataflow pass.

Protocol classes opt in by declaring the volatile mirrors of their
durable state::

    class PaxosConsensus(ConsensusService):
        VOLATILE_FIELDS = ("_acceptor", "_attempt_counter")

Within each method of such a class the rule tracks, in statement order,
the set of declared fields mutated since the last stable-storage write
(``storage.log`` / ``storage.append`` / ``self._store`` / ...).  If a
transport send (``endpoint.send`` / ``endpoint.multisend``) is reachable
while that set is non-empty, the send is flagged.  Branches are analyzed
independently and merged by union; loop bodies get a second pass so a
mutation late in the body reaches a send at its top.  The pass is
intraprocedural: helper calls are opaque, so the discipline "mutate and
log in the same helper" (as ``_set_acceptor_state`` does) is the pattern
that keeps code clean under this rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.registry import Rule

__all__ = ["WAL_RULES", "VOLATILE_DECLARATION"]

#: Receiver-name tokens that identify a raw transport medium (WAL002).
_RAW_MEDIUM_TOKENS = frozenset({"network", "medium", "transport", "channel",
                                "link", "net"})

#: Class attribute the rule reads to learn a class's volatile mirrors.
VOLATILE_DECLARATION = "VOLATILE_FIELDS"

_BARRIER_OPS = frozenset({"log", "append", "delete", "delete_prefix",
                          "flush", "sync"})
_SELF_BARRIERS = frozenset({"_store", "take_checkpoint"})
_SEND_OPS = frozenset({"send", "multisend"})
_SEND_RECEIVERS = ("endpoint", "network", "transport")
_MUTATORS = frozenset({"append", "add", "update", "pop", "popitem", "clear",
                       "remove", "discard", "extend", "insert",
                       "setdefault", "sort"})


def _attr_path(node: ast.AST) -> Tuple[str, ...]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _self_field(node: ast.AST) -> str:
    """``self.f`` or ``self.f[...]`` -> ``"f"`` (else ``""``)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    path = _attr_path(node)
    if len(path) == 2 and path[0] == "self":
        return path[1]
    return ""


class _Event:
    """One ordered action inside a statement: mutate, barrier or send."""

    __slots__ = ("kind", "field", "node")

    def __init__(self, kind: str, field: str, node: ast.AST):
        self.kind = kind
        self.field = field
        self.node = node

    def position(self) -> Tuple[int, int]:
        return (getattr(self.node, "lineno", 0),
                getattr(self.node, "col_offset", 0))


def _statement_events(stmt: ast.stmt, fields: Set[str]) -> List[_Event]:
    """Mutations/barriers/sends inside one simple statement, source order."""
    events: List[_Event] = []
    if isinstance(stmt, (ast.Assign, ast.AugAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        for target in targets:
            elts = target.elts if isinstance(target, (ast.Tuple, ast.List)) \
                else [target]
            for elt in elts:
                field = _self_field(elt)
                if field in fields:
                    events.append(_Event("mutate", field, elt))
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            field = _self_field(target)
            if field in fields:
                events.append(_Event("mutate", field, target))
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        path = _attr_path(node.func)
        if not path:
            continue
        attr = path[-1]
        receiver = path[:-1]
        if attr in _SEND_OPS and \
                any(part in _SEND_RECEIVERS for part in receiver):
            events.append(_Event("send", "", node))
        elif attr in _BARRIER_OPS and \
                any("storage" in part or part == "store"
                    for part in receiver):
            events.append(_Event("barrier", "", node))
        elif attr in _SELF_BARRIERS and receiver[:1] == ("self",):
            events.append(_Event("barrier", "", node))
        elif attr in _MUTATORS and len(path) == 3 and path[0] == "self" \
                and path[1] in fields:
            events.append(_Event("mutate", path[1], node))
    events.sort(key=_Event.position)
    return events


class WriteAheadSendRule(Rule):
    """WAL001: log volatile-mirror mutations before dependent sends."""

    id = "WAL001"
    name = "log-before-send"
    summary = ("a transport send is reachable after mutating a declared "
               "volatile field with no stable-storage write in between")
    rationale = ("Sections 5.1–5.3: a process must never send a message "
                 "that depends on state it could forget across a crash; "
                 "e.g. an acceptor must log (promised, accepted) before "
                 "answering, or a recovered incarnation could un-promise "
                 "and break Uniform Agreement.")
    scope = ("repro.core", "repro.consensus")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for class_node in ctx.tree.body:
            if not isinstance(class_node, ast.ClassDef):
                continue
            fields = self._declared_fields(class_node)
            if not fields:
                continue
            for item in class_node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_method(ctx, class_node, item,
                                                  fields)

    @staticmethod
    def _declared_fields(class_node: ast.ClassDef) -> Set[str]:
        for stmt in class_node.body:
            targets: Sequence[ast.expr] = ()
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) \
                        and target.id == VOLATILE_DECLARATION \
                        and isinstance(value, (ast.Tuple, ast.List)):
                    return {elt.value for elt in value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)}
        return set()

    def _check_method(self, ctx: ModuleContext, class_node: ast.ClassDef,
                      method: ast.AST, fields: Set[str]) -> Iterator[Finding]:
        findings: Dict[Tuple[int, int], Finding] = {}
        method_name = getattr(method, "name", "<method>")

        def walk_block(stmts: Sequence[ast.stmt],
                       dirty: Dict[str, int]) -> Dict[str, int]:
            for stmt in stmts:
                dirty = walk_stmt(stmt, dirty)
            return dirty

        def walk_stmt(stmt: ast.stmt,
                      dirty: Dict[str, int]) -> Dict[str, int]:
            if isinstance(stmt, ast.If):
                then = walk_block(stmt.body, dict(dirty))
                other = walk_block(stmt.orelse, dict(dirty))
                return {**then, **other}
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                # Two passes: a mutation late in the body must be dirty
                # when control returns to a send at the top.
                once = walk_block(stmt.body, dict(dirty))
                twice = walk_block(stmt.body, {**dirty, **once})
                tail = walk_block(stmt.orelse, {**dirty, **twice})
                return {**dirty, **twice, **tail}
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                return walk_block(stmt.body, dirty)
            if isinstance(stmt, ast.Try):
                out = walk_block(stmt.body, dict(dirty))
                for handler in stmt.handlers:
                    out = {**out, **walk_block(handler.body, dict(dirty))}
                out = {**out, **walk_block(stmt.orelse, dict(out))}
                return walk_block(stmt.finalbody, out)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                return dirty  # nested scopes are out of this pass
            for event in _statement_events(stmt, fields):
                if event.kind == "mutate":
                    dirty.setdefault(event.field, event.position()[0])
                elif event.kind == "barrier":
                    dirty = {}
                elif event.kind == "send" and dirty:
                    position = event.position()
                    if position not in findings:
                        summary = ", ".join(
                            f"{name!r} (mutated line {line})"
                            for name, line in sorted(dirty.items()))
                        findings[position] = ctx.finding(
                            self.id, event.node,
                            f"{class_node.name}.{method_name}: transport "
                            f"send reachable after mutating volatile "
                            f"field(s) {summary} with no stable-storage "
                            f"write in between")
            return dirty

        walk_block(getattr(method, "body", []), {})
        for position in sorted(findings):
            yield findings[position]


class DirectTransportSendRule(Rule):
    """WAL002: protocol code must send through its Endpoint component."""

    id = "WAL002"
    name = "no-raw-transport-send"
    summary = ("a protocol module calls send/multisend directly on a "
               "transport medium instead of going through its Endpoint")
    rationale = ("The endpoint sits above whatever TransportMedium the "
                 "harness wired in — in particular the stubborn channel "
                 "layer that turns the paper's fair-lossy links into "
                 "reliable ones via ack/retransmit.  A protocol that grabs "
                 "the raw medium (node.network.send(...)) silently opts "
                 "out of retransmission, so one dropped datagram becomes "
                 "a protocol-level message loss the verifier cannot "
                 "explain.")
    scope = ("repro.core", "repro.consensus", "repro.quorum",
             "repro.multigroup", "repro.fdetect", "repro.apps",
             "repro.baselines")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = _attr_path(node.func)
            if len(path) < 2 or path[-1] not in _SEND_OPS:
                continue
            receiver = path[:-1]
            if "endpoint" in receiver[-1]:
                continue  # the sanctioned path
            if any(token in part for part in receiver
                   for token in _RAW_MEDIUM_TOKENS):
                yield ctx.finding(
                    self.id, node,
                    f"direct {'.'.join(path)}(...) bypasses the endpoint "
                    f"(and any stubborn-channel layer beneath it); send "
                    f"through the node's Endpoint component instead")


WAL_RULES = (WriteAheadSendRule(), DirectTransportSendRule())
