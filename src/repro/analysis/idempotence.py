"""Recovery idempotence rule (REC003).

Section 4 re-runs ``on_start`` on every recovery, and a process may
crash *during* recovery — so everything the recovery procedure does to
stable storage must be idempotent, or a crash mid-recovery (or simply
the next recovery) compounds the effect.

REC003 walks the **direct** recovery closure — functions reachable from
``on_start`` through plain calls, excluding handlers that are merely
registered (they run later, after recovery completed) and coroutines
passed to ``spawn(...)`` (same reason) — and flags two shapes:

* **unguarded append** — ``storage.append(K, item)`` with no read
  (``retrieve``/``retrieve_list``/``contains``) or ``delete`` of a
  matching key in the *same function*: every recovery re-appends, so
  the durable list grows (and with it, replayed state) once per crash.
* **retrieve-derived increment** — a durable write whose value is an
  arithmetic derivation of a value retrieved from the *same* key
  (``log(K, retrieve(K) + 1)``, possibly through a local or a
  key-forwarding helper): crashing between the retrieve and the write —
  or after the write but before recovery completes — advances the
  counter again on the next recovery.

Duplicate *sends* during recovery are deliberately not flagged: the
paper's fair-lossy channels already force every protocol to tolerate
message duplication (reception dedups by message id), so a re-send is
harmless by construction — unlike a duplicated durable effect, which
survives the crash that caused it.

Some counters are *meant* to advance monotonically per recovery — the
incarnation number of Section 4.1 is the canonical example.  Those
sites carry a ``# repro: noqa(REC003)`` with the justification; the
rule exists to make that choice explicit.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import value_sources
from repro.analysis.engine import Finding, ProjectContext
from repro.analysis.recovery import (_KeyShape, _attr_path, _canonical_key,
                                     _is_storage_receiver, _shared_analysis)
from repro.analysis.registry import Rule
from repro.analysis.symbols import ClassInfo

__all__ = ["IDEMPOTENCE_RULES", "NonIdempotentRecoveryRule"]

_PROTOCOL_SCOPE = ("repro.core", "repro.consensus", "repro.quorum",
                   "repro.multigroup", "repro.fdetect", "repro.apps",
                   "repro.baselines", "repro.membership", "repro.flow")

_GUARD_OPS = frozenset({"retrieve", "retrieve_list", "contains", "keys",
                        "delete", "delete_prefix"})
_READ_OPS = frozenset({"retrieve", "retrieve_list"})


def _spawned_call_ids(func: ast.AST) -> Set[int]:
    """ids of Call nodes passed as arguments to ``spawn(...)``.

    ``node.spawn(self._gossip_task(), ...)`` *calls* ``_gossip_task``
    syntactically, but only to build the coroutine — its body runs
    after recovery, under the scheduler, so it is not recovery code.
    """
    spawned: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and \
                _attr_path(node.func)[-1:] == ("spawn",):
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    spawned.add(id(arg))
    return spawned


class _DirectClosure:
    """Functions reachable from every ``on_start`` via direct calls."""

    def __init__(self, project: ProjectContext, scope_rule: Rule):
        self.project = project
        #: ``(concrete, defining, func)`` in deterministic walk order.
        self.members: List[Tuple[ClassInfo, Optional[ClassInfo],
                                 ast.AST]] = []
        self._visited: Set[tuple] = set()
        for ctx in project.in_scope(scope_rule):
            symbols = project.symbols.modules.get(ctx.module)
            if symbols is None:
                continue
            for info in symbols.classes.values():
                found = project.symbols.find_method(info.qualname,
                                                    "on_start")
                if found is None:
                    continue
                owner, func = found
                self._walk(info, owner, func)

    def _walk(self, concrete: ClassInfo, defining: Optional[ClassInfo],
              func: ast.AST) -> None:
        key = (concrete.qualname,
               defining.qualname if defining else "", id(func))
        if key in self._visited:
            return
        self._visited.add(key)
        self.members.append((concrete, defining, func))
        spawned = _spawned_call_ids(func)
        module = defining.module if defining else concrete.module
        resolver = self.project.resolver
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and id(node) not in spawned:
                for target in resolver.resolve(node, module, concrete,
                                               defining):
                    next_concrete = target.concrete or concrete
                    self._walk(next_concrete, target.defining,
                               target.func)


class _StorageWrite:
    __slots__ = ("op", "shape", "value", "call")

    def __init__(self, op: str, shape: _KeyShape,
                 value: Optional[ast.AST], call: ast.Call):
        self.op = op        # "log" | "append"
        self.shape = shape
        self.value = value
        self.call = call


class NonIdempotentRecoveryRule(Rule):
    """REC003: recovery effects must be idempotent."""

    id = "REC003"
    name = "non-idempotent-recovery"
    summary = ("a function reachable from on_start performs a "
               "non-idempotent durable effect (unguarded append or "
               "retrieve-derived increment)")
    rationale = ("Section 4: recovery re-runs on every restart and may "
                 "itself be interrupted by a crash; a durable append "
                 "or counter bump without a logged guard compounds "
                 "once per recovery.")
    scope = _PROTOCOL_SCOPE
    requires_project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _shared_analysis(project, self)
        if not analysis.has_recovery_surface:
            return
        helpers = analysis.index.helpers
        closure = _DirectClosure(project, self)
        seen_positions: Set[Tuple[str, int, int]] = set()
        for concrete, defining, func in closure.members:
            owner = defining or concrete
            for finding in self._check_function(project, owner, func,
                                                helpers):
                position = (finding.path, finding.line, finding.col)
                if position in seen_positions:
                    continue  # same body walked for several subclasses
                seen_positions.add(position)
                yield finding

    # -- per-function scan -------------------------------------------------

    def _check_function(self, project: ProjectContext, owner: ClassInfo,
                        func: ast.AST,
                        helpers) -> Iterator[Finding]:
        params: Set[str] = set()
        args = getattr(func, "args", None)
        if args is not None:
            params = {arg.arg for arg in
                      list(args.args) + list(args.kwonlyargs)}
        writes: List[_StorageWrite] = []
        guards: List[_KeyShape] = []
        reads: Dict[str, Tuple[_KeyShape, bool]] = {}

        calls = sorted(
            (node for node in ast.walk(func)
             if isinstance(node, ast.Call)),
            key=lambda node: (node.lineno, node.col_offset))
        for call in calls:
            classified = self._classify(call, params, helpers)
            if classified is None:
                continue
            op, key, value = classified
            shape = _canonical_key(key, project, owner)
            if op in _GUARD_OPS:
                if not shape.opaque:
                    guards.append(shape)
                continue
            if not shape.opaque:
                writes.append(_StorageWrite(op, shape, value, call))

        # Bindings whose value derives from a retrieve: name/field ->
        # (source key shape, arithmetic applied at bind time).
        assigns = sorted(
            (node for node in ast.walk(func)
             if isinstance(node, (ast.Assign, ast.AnnAssign))),
            key=lambda node: (node.lineno, node.col_offset))
        for stmt in assigns:
            value = stmt.value
            if value is None:
                continue
            sources = self._read_shapes_in(value, project, owner, params,
                                           helpers)
            if not sources:
                continue
            arith = any(isinstance(node, ast.BinOp)
                        for node in ast.walk(value))
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            for target in targets:
                slot = self._slot_of(target)
                if slot is not None:
                    # Several sources: keep the first (deterministic).
                    reads[slot] = (sources[0], arith)

        for write in writes:
            if write.op == "append":
                guarded = any(write.shape.matches(guard)
                              for guard in guards)
                if not guarded:
                    yield self._append_finding(project, owner, write)
                    continue
            yield from self._increment_finding(project, owner, write,
                                               reads, params, helpers)

    def _classify(self, call: ast.Call, params: Set[str], helpers
                  ) -> Optional[Tuple[str, ast.AST, Optional[ast.AST]]]:
        """(op, key expr, value expr) of a storage call, else None."""
        path = _attr_path(call.func)
        if len(path) < 2 or not call.args:
            return None
        attr, receiver = path[-1], path[:-1]
        if _is_storage_receiver(receiver):
            if attr in ("log", "append"):
                key = call.args[0]
                value = call.args[1] if len(call.args) > 1 else None
            elif attr in _GUARD_OPS:
                key, value = call.args[0], None
            else:
                return None
            if isinstance(key, ast.Name) and key.id in params:
                return None  # helper body; the call sites carry keys
            return attr, key, value
        helper = helpers.get(attr)
        if helper is not None and receiver[:1] == ("self",) and \
                len(call.args) > helper.arg_index:
            key = call.args[helper.arg_index]
            if isinstance(key, ast.Name) and key.id in params:
                return None
            if helper.kind == "write":
                value = call.args[helper.arg_index + 1] \
                    if len(call.args) > helper.arg_index + 1 else None
                return "log", key, value
            if helper.kind in ("read", "prefix"):
                return "retrieve", key, None
        return None

    def _read_shapes_in(self, expr: ast.AST, project: ProjectContext,
                        owner: ClassInfo, params: Set[str],
                        helpers) -> List[_KeyShape]:
        shapes: List[_KeyShape] = []
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            classified = self._classify(node, params, helpers)
            if classified is None or classified[0] not in _READ_OPS:
                continue
            shape = _canonical_key(classified[1], project, owner)
            if not shape.opaque:
                shapes.append(shape)
        return shapes

    @staticmethod
    def _slot_of(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self":
            return f"self.{target.attr}"
        return None

    # -- findings ----------------------------------------------------------

    def _append_finding(self, project: ProjectContext, owner: ClassInfo,
                        write: _StorageWrite) -> Finding:
        where = f"{owner.name}.{getattr(write.call.func, 'attr', '?')}"
        finding = project.finding(
            self.id, owner.module, write.call,
            f"non-idempotent recovery: storage.append to "
            f"{write.shape.describe()} is reachable from on_start with "
            f"no read or delete of a matching key in the same function "
            f"— every recovery re-appends, duplicating the durable "
            f"list ({where})")
        assert finding is not None
        return finding

    def _increment_finding(self, project: ProjectContext,
                           owner: ClassInfo, write: _StorageWrite,
                           reads: Dict[str, Tuple[_KeyShape, bool]],
                           params: Set[str],
                           helpers) -> Iterator[Finding]:
        if write.value is None:
            return
        # Inline form: log(K, int(retrieve(K, 0)) + 1).
        inline = self._read_shapes_in(write.value, project, owner,
                                      params, helpers)
        arith_here = any(isinstance(node, ast.BinOp)
                         for node in ast.walk(write.value))
        derived: List[Tuple[_KeyShape, bool]] = \
            [(shape, arith_here) for shape in inline]
        # Through a binding: x = retrieve(K) + 1; log(K, x).
        names, fields = value_sources(write.value)
        for slot in sorted(names) + [f"self.{f}" for f in sorted(fields)]:
            record = reads.get(slot)
            if record is not None:
                shape, arith = record
                derived.append((shape, arith or arith_here))
        for shape, arith in derived:
            if arith and shape.matches(write.shape):
                yield_finding = project.finding(
                    self.id, owner.module, write.call,
                    f"non-idempotent recovery: this durable write to "
                    f"{write.shape.describe()} stores an arithmetic "
                    f"derivation of a value retrieved from the same "
                    f"key — a crash during recovery advances the "
                    f"counter once more on the next restart; guard it "
                    f"with a logged marker or suppress with a "
                    f"justification if monotonic advance is intended")
                assert yield_finding is not None
                yield yield_finding
                return


IDEMPOTENCE_RULES = (NonIdempotentRecoveryRule(),)
