"""Command-line interface: run verified scenarios from a shell.

Examples::

    python -m repro run --protocol alternative -n 5 --seed 3 \
        --loss 0.1 --rate 2 --duration 20 --faults random

    python -m repro compare --seed 7 --rate 3 --duration 10

    python -m repro info

Every ``run`` verifies the four Atomic Broadcast properties before
printing metrics, so a zero exit status certifies a correct execution.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import Any, List, Optional, Tuple

from repro.analysis.lint import add_lint_arguments, execute_lint
from repro.core.alternative import AlternativeConfig
from repro.errors import ReproError, VerificationError
from repro.harness.cluster import PROTOCOLS, Cluster, ClusterConfig
from repro.harness.live import LiveCluster
from repro.harness.report import format_table
from repro.harness.scenario import Scenario, run_scenario
from repro.harness.verify import verify_run
from repro.runtime import Tracer
from repro.sim.faults import RandomFaults
from repro.transport.network import NetworkConfig
from repro.workloads.generators import PoissonWorkload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Atomic Broadcast in asynchronous crash-recovery "
                    "systems (Rodrigues & Raynal, ICDCS 2000) — "
                    "scenario runner")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one verified scenario")
    run.add_argument("--runtime", choices=["sim", "live"], default="sim",
                     help="sim: deterministic virtual time; live: asyncio "
                          "+ localhost UDP + file storage, with one "
                          "scripted kill/restart, cross-checked against "
                          "the sim runtime")
    run.add_argument("--protocol", choices=PROTOCOLS, default="basic")
    run.add_argument("-n", "--nodes", type=int, default=3)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--loss", type=float, default=0.05,
                     help="network loss rate (0 <= p < 1)")
    run.add_argument("--duplicates", type=float, default=0.0,
                     help="network duplication rate")
    run.add_argument("--rate", type=float, default=1.5,
                     help="Poisson A-broadcast rate per node")
    run.add_argument("--duration", type=float, default=15.0,
                     help="workload duration (virtual time)")
    run.add_argument("--faults", choices=["none", "random"],
                     default="none")
    run.add_argument("--mttf", type=float, default=8.0)
    run.add_argument("--mttr", type=float, default=2.0)
    run.add_argument("--checkpoint-interval", type=float, default=2.0,
                     help="alternative protocol: checkpoint period")
    run.add_argument("--delta", type=int, default=3,
                     help="alternative protocol: state-transfer trigger")
    run.add_argument("--log-unordered", action="store_true",
                     help="alternative protocol: Section 5.4 batching")
    run.add_argument("--trace", type=int, default=0, metavar="N",
                     help="print the last N protocol trace events")

    compare = commands.add_parser(
        "compare", help="run every protocol on one workload")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("-n", "--nodes", type=int, default=3)
    compare.add_argument("--rate", type=float, default=2.0)
    compare.add_argument("--duration", type=float, default=10.0)

    chaos = commands.add_parser(
        "chaos", help="seeded random fault-scenario exploration: every "
                      "run is verified against the paper's invariants "
                      "and every failure reproduces from its seed")
    chaos.add_argument("--seeds", type=int, default=25,
                       help="number of seeds to explore")
    chaos.add_argument("--runtime", choices=["sim", "live"], default="sim",
                       help="sim: virtual-time scenarios with partitions "
                            "and disk faults; live: real asyncio/UDP/file "
                            "runs with kills, loss bursts and clock skew")
    chaos.add_argument("--master-seed", type=int, default=0,
                       help="namespace for the per-seed derivations")
    chaos.add_argument("--horizon", type=float, default=8.0,
                       help="scenario length (virtual or wall seconds)")
    chaos.add_argument("--reproduce", type=int, default=None, metavar="SEED",
                       help="re-run one seed with its exact fault "
                            "timeline printed")
    chaos.add_argument("--quiet", action="store_true",
                       help="print failing seeds only")
    chaos.add_argument("--churn", action="store_true",
                       help="add the membership-churn nemesis (joins, "
                            "leaves and evictions composed with the "
                            "fault scenarios); a different scenario "
                            "family from the default sweep")
    chaos.add_argument("--overload", action="store_true",
                       help="add the overload/gray-failure battery "
                            "(saturation bursts, slow disks, limping "
                            "nodes) with per-node admission control; a "
                            "different scenario family from the default "
                            "sweep")

    churn = commands.add_parser(
        "churn", help="seeded elastic-reconfiguration scenario: grow by "
                      "join-by-state-transfer, shrink by ordered "
                      "leave/evict under a crash storm, then verify "
                      "uniform total order across every epoch")
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument("--runtime", choices=["sim", "live"], default="sim")
    churn.add_argument("--settle-limit", type=float, default=300.0,
                       help="virtual (sim) or wall (live) settle budget")
    churn.add_argument("--check-reproducibility", action="store_true",
                       help="run the sim scenario twice and require a "
                            "bit-identical view-install timeline")

    overload = commands.add_parser(
        "overload", help="seeded saturation scenario: a >10x overload "
                         "burst against admission control while one "
                         "node's disk limps, with exact accounting of "
                         "every accepted/rejected broadcast and bounded "
                         "queues verified end to end")
    overload.add_argument("--seed", type=int, default=0)
    overload.add_argument("--settle-limit", type=float, default=300.0,
                          help="virtual-time settle budget")
    overload.add_argument("--check-reproducibility", action="store_true",
                          help="run the scenario twice and require "
                               "bit-identical overload signatures")

    lint = commands.add_parser(
        "lint", help="protocol-aware static analysis (determinism, "
                     "write-ahead-logging, sim-coroutine rules)")
    add_lint_arguments(lint)

    wirefuzz = commands.add_parser(
        "wirefuzz", help="seeded fuzz of the wire codec: cross-version "
                         "round-trips for every registered message class "
                         "plus adversarial datagrams that must fail only "
                         "with WireCodecError")
    wirefuzz.add_argument("--iterations", type=int, default=500,
                          help="round-trip iterations (adversarial "
                               "decodes run 4x this)")
    wirefuzz.add_argument("--seed", type=int, default=0)

    commands.add_parser("info", help="list protocols and experiments")
    return parser


def _network(args) -> NetworkConfig:
    return NetworkConfig(loss_rate=args.loss,
                         duplicate_rate=args.duplicates)


def _live_plan(args) -> Tuple[List[Tuple[float, str]], float, float]:
    """The scripted live workload: submissions + one kill/restart.

    A single sender keeps the A-delivery order a pure function of the
    submission sequence (batches always respect the deterministic
    MessageId order), so the live run is comparable to a sim replay of
    the same plan even though live timing is non-deterministic.
    """
    count = max(1, int(args.rate * args.duration))
    window = 0.6 * args.duration
    submissions = [(0.1 + i * window / count, f"live-{i}")
                   for i in range(count)]
    kill_at = 0.45 * args.duration
    restart_at = 0.75 * args.duration
    return submissions, kill_at, restart_at


def _canonical_payloads(cluster: Any) -> List[Any]:
    """Verify the run and return its canonical payload sequence."""
    report = verify_run(cluster)
    payloads = cluster.collector.broadcast_payloads
    return [payloads[mid] for mid in report.canonical]


def _replay_in_sim(args, config: ClusterConfig,
                   submissions: List[Tuple[float, str]],
                   kill_at: float, restart_at: float,
                   victim: int) -> List[Any]:
    """Run the live plan on the deterministic runtime for comparison."""
    cluster = Cluster(config)
    cluster.start()
    for when, payload in submissions:
        cluster.sim.schedule(when, cluster.submit, 0, payload)
    cluster.sim.schedule(kill_at, cluster.crash, victim)
    cluster.sim.schedule(restart_at, cluster.recover, victim)
    cluster.sim.run(until=args.duration)
    if not cluster.settle(limit=args.duration * 20):
        raise VerificationError("sim replay did not settle")
    return _canonical_payloads(cluster)


def _run_live(args) -> int:
    """One live run (asyncio + UDP + files) cross-checked against sim."""
    if args.faults == "random":
        raise ReproError(
            "--faults random is not supported with --runtime live; the "
            "live runner always injects one scripted kill/restart")
    alt = AlternativeConfig(
        checkpoint_interval=args.checkpoint_interval or None,
        delta=args.delta or None,
        log_unordered=args.log_unordered)
    config = ClusterConfig(n=args.nodes, seed=args.seed,
                           protocol=args.protocol,
                           network=_network(args), alt=alt)
    submissions, kill_at, restart_at = _live_plan(args)
    victim = args.nodes - 1
    with tempfile.TemporaryDirectory(prefix="repro-live-") as directory:
        cluster = LiveCluster(config, directory)
        with cluster:
            tracer = None
            if args.trace:
                tracer = Tracer()
                cluster.runtime.tracer = tracer
            cluster.start()
            for when, payload in submissions:
                cluster.runtime.schedule(when, cluster.submit, 0, payload)
            cluster.run_for(kill_at)
            cluster.kill(victim)
            cluster.run_for(restart_at - kill_at)
            cluster.restart(victim)
            cluster.run_for(max(0.0, args.duration - restart_at))
            if not cluster.settle(limit=max(10.0, args.duration)):
                raise VerificationError("live run did not settle")
            live_order = _canonical_payloads(cluster)
            victim_node = cluster.nodes[victim]
            net = cluster.network.metrics.snapshot()
            wall = cluster.runtime.now
    sim_order = _replay_in_sim(args, config, submissions, kill_at,
                               restart_at, victim)
    match = live_order == sim_order
    print(format_table(
        f"live · {args.protocol} · n={args.nodes} · seed={args.seed} · "
        f"loss={args.loss} (injected, over UDP)",
        ["metric", "value"],
        [
            ["messages broadcast", len(submissions)],
            ["messages delivered (canonical)", len(live_order)],
            ["kill/restart survived",
             f"node {victim} (recoveries: {victim_node.recovery_count})"],
            ["UDP datagrams sent", net["sent"]],
            ["injected loss / duplicates",
             f"{net['lost']} / {net['duplicated']}"],
            ["wall-clock time (s)", round(wall, 2)],
            ["properties verified", "yes"],
            ["delivery order matches sim", "yes" if match else "NO"],
        ]))
    if tracer is not None:
        print(f"\nlast {args.trace} trace events "
              f"({len(tracer)} recorded; counts {tracer.counts()}):")
        print(tracer.format_text(limit=args.trace))
    if not match:
        raise VerificationError(
            f"live delivery order diverged from sim: "
            f"live={live_order} sim={sim_order}")
    return 0


def _run(args) -> int:
    if args.runtime == "live":
        return _run_live(args)
    alt = AlternativeConfig(
        checkpoint_interval=args.checkpoint_interval or None,
        delta=args.delta or None,
        log_unordered=args.log_unordered)
    faults = None
    if args.faults == "random":
        faults = RandomFaults(mttf=args.mttf, mttr=args.mttr,
                              stabilize_at=args.duration * 1.2,
                              seed=args.seed)
    tracer = None
    if args.trace:
        tracer = Tracer()
    result = run_scenario(Scenario(
        cluster=ClusterConfig(n=args.nodes, seed=args.seed,
                              protocol=args.protocol,
                              network=_network(args), alt=alt),
        workload=PoissonWorkload(args.rate, args.duration,
                                 seed=args.seed),
        faults=faults,
        duration=args.duration * 1.5,
        settle_limit=args.duration * 20,
        tracer=tracer))
    metrics = result.metrics
    latency = metrics.latency_summary()
    print(format_table(
        f"{args.protocol} · n={args.nodes} · seed={args.seed} · "
        f"loss={args.loss} · faults={args.faults}",
        ["metric", "value"],
        [
            ["messages broadcast", metrics.messages_broadcast],
            ["messages delivered", metrics.messages_delivered],
            ["consensus rounds", result.report.rounds
             if result.report else "-"],
            ["throughput (msg/time)", round(metrics.throughput, 3)],
            ["latency p50", round(latency["p50"], 4)],
            ["latency p95", round(latency["p95"], 4)],
            ["log ops (total)", metrics.total_log_ops()],
            ["log ops by layer", str(metrics.log_ops_by_prefix())],
            ["network msgs", metrics.network["sent"]],
            ["crashes survived",
             sum(stats["crashes"]
                 for stats in metrics.node_stats.values())],
            ["properties verified", "yes"],
        ]))
    if tracer is not None:
        print(f"\nlast {args.trace} trace events "
              f"({len(tracer)} recorded; counts {tracer.counts()}):")
        print(tracer.format_text(limit=args.trace))
    return 0


def _chaos(args) -> int:
    from repro.chaos.engine import ChaosConfig, explore, reproduce
    config = ChaosConfig(seeds=args.seeds, runtime=args.runtime,
                         master_seed=args.master_seed,
                         horizon=args.horizon, churn=args.churn,
                         overload=args.overload)
    if args.runtime == "live":
        # Real seconds per scenario: keep the per-seed cost bounded.
        config.settle_limit = 30.0
        config.n_choices = (3,)
    if args.reproduce is not None:
        result = reproduce(config, args.reproduce)
        return 0 if result.ok else 1
    emit = None if args.quiet else print
    report = explore(config, emit=emit)
    totals = ", ".join(f"{key}={value}"
                       for key, value in sorted(report.totals().items()))
    print(f"\n{len(report.results)} seeds, "
          f"{len(report.failures)} failures  ({totals})")
    family = ("--churn " if args.churn else "") + \
        ("--overload " if args.overload else "")
    for failure in report.failures:
        print(f"  reproduce with: repro chaos --runtime {args.runtime} "
              f"--master-seed {args.master_seed} "
              f"--horizon {args.horizon} {family}"
              f"--reproduce {failure.seed}")
    return 0 if report.ok else 1


def _churn(args) -> int:
    from repro.membership.scenario import (check_churn_reproducibility,
                                           run_churn_scenario)
    if args.check_reproducibility:
        if args.runtime != "sim":
            raise ReproError("--check-reproducibility requires the "
                             "deterministic sim runtime")
        report = check_churn_reproducibility(seed=args.seed)
        print(report.describe())
        print("\nview-install timeline bit-identical across re-runs: yes")
        return 0
    report = run_churn_scenario(seed=args.seed, runtime=args.runtime,
                                settle_limit=args.settle_limit)
    print(report.describe())
    return 0


def _overload(args) -> int:
    from repro.flow.scenario import (check_overload_reproducibility,
                                     run_saturation_scenario)
    if args.check_reproducibility:
        report = check_overload_reproducibility(
            seed=args.seed, settle_limit=args.settle_limit)
        print(report.describe())
        print("\noverload signature bit-identical across re-runs: yes")
        return 0
    report = run_saturation_scenario(seed=args.seed,
                                     settle_limit=args.settle_limit)
    print(report.describe())
    return 0


def _compare(args) -> int:
    rows = []
    for protocol in PROTOCOLS:
        loss = 0.0 if protocol in ("ct",) else 0.05
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=args.nodes, seed=args.seed,
                                  protocol=protocol,
                                  network=NetworkConfig(loss_rate=loss)),
            workload=PoissonWorkload(args.rate, args.duration,
                                     seed=args.seed),
            duration=args.duration * 1.5,
            settle_limit=args.duration * 20))
        metrics = result.metrics
        latency = metrics.latency_summary()
        rows.append([protocol, metrics.messages_delivered,
                     round(latency["p50"], 4),
                     metrics.total_log_ops(),
                     metrics.network["sent"]])
    print(format_table(
        f"protocol comparison · n={args.nodes} · seed={args.seed}",
        ["protocol", "delivered", "lat p50", "log ops", "msgs"],
        rows))
    return 0


def _wirefuzz(args) -> int:
    from repro.runtime.wirefuzz import run_fuzz
    report = run_fuzz(args.iterations, seed=args.seed)
    print(report.summary())
    for suite, sub_seed, description in report.defects:
        print(f"  [{suite}] seed={sub_seed}: {description}")
    return 0 if report.ok else 1


def _info() -> int:
    print("protocols:")
    descriptions = {
        "basic": "Figure 2 — minimal logging, replay recovery",
        "alternative": "Figures 3-4 — checkpoints, state transfer, "
                       "batching",
        "eager": "baseline — logs every Unordered/Agreed update",
        "ct": "baseline — Chandra-Toueg transformation (crash-stop)",
        "sequencer": "baseline — fixed sequencer (no fault tolerance)",
    }
    for protocol in PROTOCOLS:
        print(f"  {protocol:12s} {descriptions[protocol]}")
    print("\nexperiments: pytest benchmarks/ --benchmark-only "
          "(tables E1-E11 + X1-X2)")
    print("docs: README.md · DESIGN.md · EXPERIMENTS.md")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit status.

    Library errors (including analyzer failures) exit with a clean
    one-line message on stderr — never a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _run(args)
        if args.command == "chaos":
            return _chaos(args)
        if args.command == "churn":
            return _churn(args)
        if args.command == "overload":
            return _overload(args)
        if args.command == "compare":
            return _compare(args)
        if args.command == "lint":
            return execute_lint(args.paths, args.output_format,
                                args.list_rules, args.diff, args.jobs,
                                args.baseline, args.write_baseline,
                                args.emit_msgflow)
        if args.command == "wirefuzz":
            return _wirefuzz(args)
        return _info()
    except ReproError as exc:
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
