"""Flow control: deterministic admission, bounded queues, backpressure.

The paper's protocols assume unbounded volatile buffers; this package
supplies the production-side envelope around them.  A per-node
:class:`FlowController` gates ``to_broadcast()`` with a seeded,
deterministic token bucket plus credit accounting and raises a retryable
:class:`repro.errors.OverloadError` when the node is saturated.
:class:`BackoffPolicy` gives workload clients a seeded jittered
exponential retry schedule.

Everything here is default-off: with :class:`FlowConfig` at its defaults
the controller admits every submission, draws no randomness from shared
streams, and leaves every existing seed universe bit-identical (the same
inertness discipline as the epoch gate in ``repro.membership``).
"""

from repro.flow.controller import BackoffPolicy, FlowConfig, FlowController

# The canned saturation scenario lives in repro.flow.scenario; it is not
# re-exported here because it imports the harness, which itself imports
# this package (the controller must stay import-light).

__all__ = [
    "BackoffPolicy",
    "FlowConfig",
    "FlowController",
]
