"""The canonical overload scenario: saturate, limp, drain, verify.

One seeded script drives the whole overload-robustness surface in a
single simulated run:

* start at ``n = 3`` with admission control **on** (token bucket at
  4 msg/s per node, burst 4, at most 16 unordered messages in flight)
  and a deliberately tight stubborn channel (window 4, backlog bound
  16) so every volatile queue in the stack is exercised near its bound;
* **gray failure**: node 2's disk turns slow for the first stretch of
  the run — every write stalls by a seeded draw, and the stall freezes
  the whole process (inbound messages defer past the stall horizon),
  the classic limping-but-alive fault;
* **saturation burst**: a client offers 120 broadcasts to node 0
  inside one virtual second — more than ten times what the bucket
  refills in that window — retrying each rejection with seeded,
  jittered exponential backoff until it is accepted or the retry
  budget is exhausted;
* **drain and verify**: once no retry is pending the run settles and
  the full :func:`~repro.harness.verify.verify_run` predicate set runs,
  followed by :func:`~repro.harness.verify.verify_overload_safety` with
  the client's exact attempt counts — every admission attempt is
  accounted (``accepted + rejected == offered``), every accepted
  broadcast was delivered, and no queue exceeded its configured bound.

Everything is a pure function of the seed: the backoff jitter, the
disk-stall draws and the protocol schedule all come from streams seeded
by it, so :func:`check_overload_reproducibility` re-runs the same seed
and demands a bit-identical :meth:`OverloadReport.signature`.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from repro.errors import OverloadError, VerificationError
from repro.flow.controller import BackoffPolicy, FlowConfig
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.verify import VerificationReport, verify_overload_safety, \
    verify_run
from repro.storage.faulty import FaultyStorage
from repro.storage.memory import MemoryStorage
from repro.transport.stubborn import StubbornConfig

__all__ = ["OverloadReport", "check_overload_reproducibility",
           "run_saturation_scenario"]

# The scenario's fixed shape (the seed varies the draws, not the plan).
_N = 3
_VICTIM = 2                 # the slow-disk node
_BURST = 120                # offered broadcasts in the saturation window
_BURST_START = 1.0
_BURST_SPAN = 1.0           # all 120 offered inside one virtual second
_SLOW_DISK_UNTIL = 4.0      # victim's disk heals at this time
_FLOW = dict(rate=4.0, burst=4, max_unordered=16)
_STUBBORN = dict(window=4, max_backlog=16)


class OverloadReport:
    """Everything one saturation run establishes (and its reproducibility
    fingerprint)."""

    def __init__(self, verification: VerificationReport,
                 offered: int, accepted: int, rejected: int,
                 rejected_by_reason: Dict[str, int],
                 retries: int, gave_up: int, delivered: int,
                 slow_writes: int, backlog_overflows: int,
                 backlog_high_water: int, unordered_high_water: int,
                 flow_snapshots: Dict[int, Dict[str, Any]],
                 end_time: float):
        self.verification = verification
        self.offered = offered
        self.accepted = accepted
        self.rejected = rejected
        self.rejected_by_reason = rejected_by_reason
        self.retries = retries
        self.gave_up = gave_up
        self.delivered = delivered
        self.slow_writes = slow_writes
        self.backlog_overflows = backlog_overflows
        self.backlog_high_water = backlog_high_water
        self.unordered_high_water = unordered_high_water
        self.flow_snapshots = flow_snapshots
        self.end_time = end_time

    def signature(self) -> Tuple[Any, ...]:
        """The unit of reproducibility: every counter the run produced,
        plus the virtual time it finished at.  Two same-seed runs must
        produce equal signatures bit for bit."""
        per_node = tuple(
            (node_id, snap["accepted"], snap["rejected"],
             tuple(sorted(snap["rejected_by_reason"].items())))
            for node_id, snap in sorted(self.flow_snapshots.items()))
        return (self.offered, self.accepted, self.rejected,
                tuple(sorted(self.rejected_by_reason.items())),
                self.retries, self.gave_up, self.delivered,
                self.slow_writes, self.backlog_overflows,
                self.backlog_high_water, self.unordered_high_water,
                per_node, self.end_time)

    def describe(self) -> str:
        lines = [
            f"offered {self.offered} admission attempts "
            f"({_BURST} broadcasts + {self.retries} retries)",
            f"accepted {self.accepted}, rejected {self.rejected} "
            f"({dict(sorted(self.rejected_by_reason.items()))}), "
            f"gave up on {self.gave_up}",
            f"delivered {self.delivered} messages over "
            f"{self.verification.rounds} rounds "
            f"(settled at t={self.end_time:.3f})",
            f"gray failure: {self.slow_writes} slow writes on "
            f"node {_VICTIM}",
            f"queue high-water: backlog {self.backlog_high_water} "
            f"(bound {_STUBBORN['max_backlog']}, "
            f"{self.backlog_overflows} overflows), "
            f"unordered {self.unordered_high_water}",
        ]
        return "\n".join(lines)


class _SaturationClient:
    """The load generator: offers broadcasts and retries rejections.

    Every admission attempt — first tries and retries alike — goes
    through :meth:`Cluster.submit` and therefore through the node's
    :class:`~repro.flow.controller.FlowController`, so the client's
    ``attempts`` counter must equal the controllers' summed ``offered``
    at the end of the run (verified).  Retry delays come from one
    stream seeded by the scenario seed; nothing else feeds it.
    """

    def __init__(self, cluster: Cluster, seed: int):
        self.cluster = cluster
        self.policy = BackoffPolicy()
        self.rng = random.Random(f"overload-backoff:{seed}")  # repro: noqa(DET004) -- private stream from the scenario seed
        self.attempts = 0
        self.rejected_attempts = 0
        self.retries = 0
        self.gave_up = 0
        self.pending = 0          # broadcasts still being retried
        self.accepted_payloads: List[str] = []

    def offer(self, node_id: int, payload: str) -> None:
        self.pending += 1
        self._attempt(node_id, payload, 0)

    def _attempt(self, node_id: int, payload: str, attempt: int) -> None:
        self.attempts += 1
        try:
            self.cluster.submit(node_id, payload)
        except OverloadError:
            self.rejected_attempts += 1
            delay = self.policy.delay(attempt, self.rng)
            if delay is None:
                self.gave_up += 1
                self.pending -= 1
                return
            self.retries += 1
            self.cluster.sim.schedule(
                delay, self._attempt, node_id, payload, attempt + 1)
            return
        self.accepted_payloads.append(payload)
        self.pending -= 1


def _build(seed: int) -> Cluster:
    def faulty_factory(node_id: int) -> FaultyStorage:
        return FaultyStorage(
            MemoryStorage(),
            rng=random.Random(f"overload-disk:{seed}:{node_id}"),  # repro: noqa(DET004) -- private stream from the scenario seed
            node_hint=node_id)

    return Cluster(ClusterConfig(
        n=_N, seed=seed, protocol="basic",
        stubborn=StubbornConfig(**_STUBBORN),
        storage_factory=faulty_factory,
        flow=FlowConfig(**_FLOW)))


def _run(seed: int, settle_limit: float) -> OverloadReport:
    cluster = _build(seed)
    cluster.start()

    # Gray failure first: the victim's disk limps through the burst.
    victim = cluster.nodes[_VICTIM]
    storage = victim.storage
    assert isinstance(storage, FaultyStorage)
    storage.set_latency(0.05, 0.2)
    storage.on_stall = victim.stall
    cluster.sim.schedule(_SLOW_DISK_UNTIL, storage.clear_latency)

    # Saturation: 120 broadcasts offered to node 0 inside one virtual
    # second.  The bucket refills 4/s and holds a burst of 4, so the
    # window admits at most ~8 — the offered load is >10x sustainable.
    client = _SaturationClient(cluster, seed)
    for index in range(_BURST):
        offset = _BURST_START + _BURST_SPAN * index / _BURST
        cluster.sim.schedule(offset, client.offer, 0,
                             f"overload-{seed}-{index}")

    # Drain: run until every broadcast is either accepted or given up.
    # The retry schedule is finite (max_retries caps each chain), so
    # this loop terminates; the horizon guard catches regressions.
    horizon = cluster.sim.now + settle_limit
    cluster.run(until=_BURST_START + _BURST_SPAN)
    while client.pending and cluster.sim.now < horizon:
        cluster.run(until=cluster.sim.now + 1.0)
    if client.pending:
        raise VerificationError(
            f"overload scenario (seed {seed}): {client.pending} "
            f"broadcasts still retrying after {settle_limit} virtual "
            f"seconds — the backoff schedule must be finite")

    if not cluster.settle(limit=cluster.sim.now + settle_limit):
        raise VerificationError(
            f"overload scenario (seed {seed}) failed to settle within "
            f"{settle_limit} after the drain")

    verification = verify_run(cluster)
    verify_overload_safety(cluster, offered=client.attempts,
                           rejected=client.rejected_attempts)

    # Every accepted broadcast must have been delivered somewhere: an
    # admitted-then-lost message would mean admission control turned
    # into silent message loss.
    delivered_payloads = {
        cluster.collector.broadcast_payloads[mid]
        for mid in cluster.collector.first_delivery
        if mid in cluster.collector.broadcast_payloads}
    missing = [payload for payload in client.accepted_payloads
               if payload not in delivered_payloads]
    if missing:
        raise VerificationError(
            f"overload scenario (seed {seed}): {len(missing)} accepted "
            f"broadcast(s) never delivered (first: {missing[0]!r})")

    assert cluster.stubborn is not None
    metrics = cluster.stubborn.metrics
    unordered_high = max(
        getattr(abcast, "unordered_high_water", 0)
        for abcast in cluster.abcasts.values())
    snapshots = {node_id: controller.snapshot()
                 for node_id, controller in sorted(cluster.flows.items())}
    accepted = sum(c.accepted for c in cluster.flows.values())
    rejected = sum(c.rejected for c in cluster.flows.values())
    by_reason: Dict[str, int] = {}
    for controller in cluster.flows.values():
        for reason, count in controller.rejected_by_reason.items():
            by_reason[reason] = by_reason.get(reason, 0) + count
    return OverloadReport(
        verification=verification,
        offered=client.attempts,
        accepted=accepted,
        rejected=rejected,
        rejected_by_reason=by_reason,
        retries=client.retries,
        gave_up=client.gave_up,
        delivered=len(cluster.collector.first_delivery),
        slow_writes=storage.injected["slow_write"],
        backlog_overflows=metrics.backlog_overflows,
        backlog_high_water=metrics.backlog_high_water,
        unordered_high_water=unordered_high,
        flow_snapshots=snapshots,
        end_time=cluster.sim.now)


def run_saturation_scenario(seed: int = 0,
                            settle_limit: float = 300.0) -> OverloadReport:
    """Run the scripted saturation scenario once and verify it end to end.

    Runs on the simulator only: the point of the scenario is exact
    accounting under overload, which needs the virtual clock (the live
    runtime gets its overload coverage from ``repro chaos --overload``
    and the send-buffer bound instead).
    """
    return _run(seed, settle_limit)


def check_overload_reproducibility(
        seed: int = 0, settle_limit: float = 300.0) -> OverloadReport:
    """Run the scenario twice; demand bit-identical signatures.

    The signature covers every admission decision, every retry, every
    queue high-water mark and the virtual settle time — if any of them
    drifts between same-seed runs, the flow layer has picked up a
    hidden source of nondeterminism.
    """
    first = _run(seed, settle_limit)
    second = _run(seed, settle_limit)
    if first.signature() != second.signature():
        raise VerificationError(
            f"overload scenario (seed {seed}) is not reproducible: "
            f"signatures diverge\n  first:  {first.signature()}\n"
            f"  second: {second.signature()}")
    return first
