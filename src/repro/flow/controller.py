"""Deterministic per-node admission control and retry backoff.

The :class:`FlowController` implements a token bucket refilled from the
runtime's virtual clock plus a credit bound on outstanding volatile
work.  It draws **no** randomness: admission is a pure function of the
submission times and the configured rate, so enabling it never perturbs
the shared seeded streams, and leaving :class:`FlowConfig` at its
defaults makes every check a no-op (the default-off discipline that
keeps existing seed universes bit-identical).

:class:`BackoffPolicy` is the client side of the busy signal: a jittered
exponential schedule whose jitter comes from a caller-supplied seeded
``random.Random``, so retry timing is replayable too.
"""

from __future__ import annotations

import random
from typing import Dict, Optional


class FlowConfig:
    """Admission and bound settings for one node's flow controller.

    Every field defaults to ``None`` (= unlimited / disabled); a config
    with all defaults is inert and admits everything.

    - ``rate`` / ``burst``: token-bucket admission on ``to_broadcast()``
      (tokens per second of virtual time; ``burst`` caps the bucket and
      defaults to ``max(1, rate)``).
    - ``max_unordered``: credit bound on the caller-reported count of
      outstanding volatile entries (the protocol's Unordered buffer, or
      the multigroup pending table) at admission time.
    - ``queue_bound``: declared bound for protocol buffer high-water
      marks, asserted by ``verify_overload_safety`` — an observability
      contract, not an admission input.
    - ``max_send_buffer``: byte bound for the live UDP send queue.
    - ``backoff``: the :class:`BackoffPolicy` clients should use when
      retrying a rejected submission.
    """

    __slots__ = ("rate", "burst", "max_unordered", "queue_bound",
                 "max_send_buffer", "backoff")

    def __init__(self, rate: Optional[float] = None,
                 burst: Optional[float] = None,
                 max_unordered: Optional[int] = None,
                 queue_bound: Optional[int] = None,
                 max_send_buffer: Optional[int] = None,
                 backoff: Optional["BackoffPolicy"] = None) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive")
        if burst is not None:
            if rate is None:
                raise ValueError("burst requires rate")
            if burst < 1:
                raise ValueError("burst must be at least one token")
        if max_unordered is not None and max_unordered < 1:
            raise ValueError("max_unordered must be at least 1")
        if queue_bound is not None and queue_bound < 1:
            raise ValueError("queue_bound must be at least 1")
        if max_send_buffer is not None and max_send_buffer < 1:
            raise ValueError("max_send_buffer must be at least 1")
        self.rate = rate
        self.burst = float(burst) if burst is not None else (
            max(1.0, rate) if rate is not None else None)
        self.max_unordered = max_unordered
        self.queue_bound = queue_bound
        self.max_send_buffer = max_send_buffer
        self.backoff = backoff

    @property
    def enabled(self) -> bool:
        """True when any admission check is active."""
        return self.rate is not None or self.max_unordered is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlowConfig(rate={self.rate}, burst={self.burst}, "
                f"max_unordered={self.max_unordered}, "
                f"queue_bound={self.queue_bound}, "
                f"max_send_buffer={self.max_send_buffer})")


class BackoffPolicy:
    """Seeded jittered exponential backoff for rejected submissions.

    ``delay(attempt, rng)`` returns the wait before retry number
    ``attempt`` (0-based), or ``None`` once ``max_retries`` is
    exhausted.  The jitter multiplier is drawn from the caller's
    ``rng`` — pass a stream seeded from the scenario seed and the
    schedule replays bit-identically.
    """

    __slots__ = ("base", "factor", "max_delay", "jitter", "max_retries")

    def __init__(self, base: float = 0.05, factor: float = 2.0,
                 max_delay: float = 2.0, jitter: float = 0.5,
                 max_retries: int = 8) -> None:
        if base <= 0:
            raise ValueError("base must be positive")
        if factor < 1:
            raise ValueError("factor must be >= 1")
        if max_delay < base:
            raise ValueError("max_delay must be >= base")
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        self.max_retries = max_retries

    def delay(self, attempt: int, rng: random.Random) -> Optional[float]:
        if attempt >= self.max_retries:
            return None
        raw = min(self.max_delay, self.base * (self.factor ** attempt))
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw


class FlowController:
    """Token-bucket + credit admission for one node's submissions.

    The bucket refills lazily from the clock value the caller passes in
    (virtual time under the simulator, loop time under the live
    runtime): ``tokens = min(burst, tokens + (now - last) * rate)``.
    No RNG is consumed and no timers are scheduled, so the controller
    is invisible to the deterministic event order unless it rejects.

    ``try_admit`` is the whole protocol: it returns ``None`` and burns
    a token on admission, or the rejection reason (``"rate"`` or
    ``"credit"``) without side effects beyond the rejection counters.
    Callers translate a reason into :class:`repro.errors.OverloadError`
    *before* consuming a sequence number, so a rejected submission
    leaves no trace in the protocol state.
    """

    __slots__ = ("node_id", "config", "tokens", "_last_refill",
                 "accepted", "rejected", "rejected_by_reason")

    def __init__(self, node_id: int, config: Optional[FlowConfig] = None) -> None:
        self.node_id = node_id
        self.config = config or FlowConfig()
        self.tokens = self.config.burst if self.config.burst is not None else 0.0
        self._last_refill = 0.0
        self.accepted = 0
        self.rejected = 0
        self.rejected_by_reason: Dict[str, int] = {}

    def try_admit(self, now: float, outstanding: int = 0) -> Optional[str]:
        """Admit one submission at virtual time ``now``.

        ``outstanding`` is the caller's current volatile-buffer
        occupancy (its credit usage).  Returns ``None`` on admission or
        the rejection reason.
        """
        reason = self._check(now, outstanding)
        if reason is None:
            if self.config.rate is not None:
                self.tokens -= 1.0
            self.accepted += 1
            return None
        self.rejected += 1
        self.rejected_by_reason[reason] = \
            self.rejected_by_reason.get(reason, 0) + 1
        return reason

    def _check(self, now: float, outstanding: int) -> Optional[str]:
        config = self.config
        if config.max_unordered is not None \
                and outstanding >= config.max_unordered:
            return "credit"
        if config.rate is not None:
            self._refill(now)
            if self.tokens < 1.0:
                return "rate"
        return None

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            assert self.config.rate is not None and self.config.burst is not None
            self.tokens = min(self.config.burst,
                              self.tokens + elapsed * self.config.rate)
            self._last_refill = now

    @property
    def offered(self) -> int:
        """Total admission attempts seen (accepted + rejected)."""
        return self.accepted + self.rejected

    def snapshot(self) -> Dict[str, object]:
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "rejected_by_reason": dict(sorted(
                self.rejected_by_reason.items())),
        }
