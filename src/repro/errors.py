"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """Raised for misuse of the simulation kernel (bad yields, dead tasks)."""


class TaskKilled(BaseException):
    """Thrown into a task's generator when the task is killed.

    Deliberately derives from :class:`BaseException` (like
    :class:`GeneratorExit`) so that protocol code written with broad
    ``except Exception`` clauses cannot accidentally swallow a crash.
    """


class ProcessDown(ReproError):
    """Raised when an operation is attempted on a node that is down."""


class StorageError(ReproError):
    """Raised for stable-storage failures (corruption, bad keys)."""


class ConsensusError(ReproError):
    """Raised for violations of the consensus interface contract."""


class ProposalMismatch(ConsensusError):
    """Raised when ``propose(k, v)`` is re-invoked with a different value.

    Property P4 of the paper requires a process to always propose the same
    value to a given consensus instance; the consensus service enforces it.
    """


class BroadcastError(ReproError):
    """Raised for misuse of the Atomic Broadcast API."""


class OverloadError(BroadcastError):
    """Raised when admission control rejects a broadcast (busy signal).

    Retryable by contract: the submission was *not* accepted, no sequence
    number was consumed, and the caller may retry after backing off.
    ``reason`` names the exhausted resource (``"rate"``, ``"credit"``, ...)
    so rejections can be accounted per cause.
    """

    def __init__(self, message: str, reason: str = "rate") -> None:
        super().__init__(message)
        self.reason = reason


class VerificationError(ReproError):
    """Raised by the harness when a run violates an Atomic Broadcast property."""


class AnalysisError(ReproError):
    """Raised when the static analyzer cannot run (bad paths, unparseable
    sources, misconfigured rules) — distinct from *findings*, which are
    reported, not raised."""
