"""Size estimation for logged values and wire messages.

Experiments E4/E7 compare *bytes logged* and the transport accounts
*bytes sent*; both need a deterministic, implementation-independent size
model.  :func:`estimate_size` charges a small per-object overhead plus the
natural payload size of primitives, matching what a compact binary codec
would produce.  It is intentionally simple — the experiments compare
protocols under the same model, so only relative sizes matter.
"""

from __future__ import annotations

from typing import Any

__all__ = ["estimate_size"]

_OVERHEAD = 2  # per-object framing bytes


def estimate_size(value: Any) -> int:
    """Estimated serialised size, in bytes, of ``value``.

    Supports the types protocols actually log and send: ``None``, bools,
    ints, floats, strings, bytes, tuples/lists/sets/frozensets, dicts, and
    any object exposing ``estimated_size()`` (wire messages and payloads).
    """
    sizer = getattr(value, "estimated_size", None)
    if sizer is not None:
        return int(sizer())
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return _OVERHEAD + max(1, (value.bit_length() + 7) // 8)
    if isinstance(value, float):
        return _OVERHEAD + 8
    if isinstance(value, str):
        return _OVERHEAD + len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return _OVERHEAD + len(value)
    if isinstance(value, (tuple, list, set, frozenset)):
        return _OVERHEAD + sum(estimate_size(item) for item in value)
    if isinstance(value, dict):
        return _OVERHEAD + sum(
            estimate_size(k) + estimate_size(v) for k, v in value.items())
    # Fallback for unexpected objects: charge their repr. Deterministic and
    # loud enough to show up in byte metrics if it happens by accident.
    return _OVERHEAD + len(repr(value))
