"""Total order multicast to multiple groups (Section 6.4 extension)."""

from repro.multigroup.builder import MultiGroupCluster
from repro.multigroup.multicast import (MulticastListener,
                                        MultiGroupMulticast)

__all__ = ["MultiGroupCluster", "MultiGroupMulticast", "MulticastListener"]
