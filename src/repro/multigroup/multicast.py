"""Total order multicast to multiple groups (Section 6.4).

The paper closes by noting that consensus-based multi-group total order
multicast protocols "can be extended to crash-recovery systems using an
approach similar to the one that has been followed here".  This module
is that extension: a timestamp-agreement (Skeen-style) multicast layered
on one crash-recovery Atomic Broadcast instance *per group*.

The key idea that makes it recoverable: every state transition that must
be agreed within a group flows **through that group's Atomic Broadcast**,
so each member's multicast state is a deterministic function of its
groups' delivery sequences — exactly the property that lets the AB
replay procedure rebuild it after a crash with no extra logging.

Protocol (for a message ``m`` addressed to groups ``G``):

1. *Propose.*  The sender submits ``("mgp", mid, G, payload)`` to the AB
   of every group in ``G``.  When group ``g`` delivers it, every member
   of ``g`` deterministically assigns the group's proposed timestamp
   ``ts_g = clock_g + 1`` (identical at all members — it is a function
   of ``g``'s total order).
2. *Exchange.*  Members periodically announce their groups' proposed
   timestamps to the members of the other destination groups (direct
   fair-loss sends, retransmitted until finalisation — volatile state,
   rebuilt by replay).  The same announcements relay the message body
   itself, so a sender crash after a partial submit cannot wedge a
   group: any member that sees ``m`` proposed in its group but missing
   in group ``h`` re-submits it to ``h``.
3. *Finalise.*  Whoever first collects proposed timestamps from all of
   ``G`` computes ``final = max(proposals)`` and submits
   ``("mgf", mid, final)`` to its group's AB.  The *first* such message
   in each group's order fixes ``m``'s final timestamp there and
   advances the group clock — again deterministically.
4. *Deliver.*  Each group delivers finalised messages in
   ``(final, mid)`` order, holding a message back while any still-
   unfinalised message could sort before it (its proposed timestamp is a
   lower bound on its final one).

Pairwise total order across groups follows because the final timestamp
of a message is a single global number and every common destination
group delivers by ``(final, mid)``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.basic import BasicAtomicBroadcast, DeliveryListener
from repro.core.messages import AppMessage
from repro.errors import BroadcastError, OverloadError
from repro.runtime import NodeComponent
from repro.transport.endpoint import Endpoint
from repro.transport.message import WireMessage

__all__ = ["MultiGroupMulticast", "MulticastListener"]

_PROPOSE = "mgp"
_FINAL = "mgf"

# A multicast message id: (sender, incarnation, sequence).
Mid = Tuple[int, int, int]


class TimestampAnnounce(WireMessage):
    """Periodic cross-group exchange: proposals + relayed bodies.

    ``entries`` is a list of
    ``[mid, dest_groups, payload, {group: proposed_ts}]`` for messages
    the sender still considers pending.
    """

    type = "mg.announce"
    fields = ("entries",)

    def __init__(self, entries: list):
        self.entries = entries


class MulticastListener:
    """Upcall interface for multicast deliveries."""

    def on_mdeliver(self, group: str, mid: Mid, payload: Any) -> None:
        """``m`` is delivered in ``group``'s final order."""


class _Pending:
    """Per-message multicast state (volatile; rebuilt by AB replay)."""

    __slots__ = ("mid", "groups", "payload", "proposed", "final",
                 "delivered_in", "final_submitted")

    def __init__(self, mid: Mid, groups: Tuple[str, ...], payload: Any):
        self.mid = mid
        self.groups = groups
        self.payload = payload
        self.proposed: Dict[str, int] = {}
        self.final: Optional[int] = None
        self.delivered_in: set = set()
        self.final_submitted = False


class _GroupTap(DeliveryListener):
    """Feeds one group's AB deliveries into the multicast layer."""

    def __init__(self, layer: "MultiGroupMulticast", group: str):
        self.layer = layer
        self.group = group

    def on_deliver(self, message: AppMessage) -> None:
        self.layer._on_group_delivery(self.group, message)

    def on_restore(self, state: Any) -> None:
        # Multigroup runs on the basic protocol (full replay); a restore
        # would require checkpointing the multicast state inside the AB
        # checkpoint, which is future work (documented in DESIGN.md).
        self.layer._reset_group(self.group)


class MultiGroupMulticast(NodeComponent):
    """Per-node multicast layer over one AB instance per joined group.

    Parameters
    ----------
    endpoint:
        The node's *base* (unscoped) endpoint, for cross-group traffic.
    group_abs:
        The per-group Atomic Broadcast instances this node runs, keyed
        by group name.
    memberships:
        Global group membership map ``{group: (node ids)}`` — static
        configuration, like the process set itself.
    announce_interval:
        Period of the timestamp-exchange/relay task.
    """

    name = "multigroup-multicast"

    def __init__(self, endpoint: Endpoint,
                 group_abs: Dict[str, BasicAtomicBroadcast],
                 memberships: Dict[str, Sequence[int]],
                 announce_interval: float = 0.3):
        super().__init__()
        self.endpoint = endpoint
        self.group_abs = dict(group_abs)
        self.memberships = {g: tuple(sorted(members))
                            for g, members in memberships.items()}
        self.announce_interval = announce_interval
        # Volatile state (rebuilt from group AB replay).
        self.clock: Dict[str, int] = {}
        self.pending: Dict[Mid, _Pending] = {}
        self.delivered: Dict[str, List[Tuple[Mid, Any]]] = {}
        self._finalized: Dict[str, List[Mid]] = {}
        self._listeners: List[MulticastListener] = []
        self._relayed: set = set()
        self._seq = 0
        self.mdelivered_count = 0
        # Optional admission control (repro.flow.FlowController).  The
        # gate sits here, not in the per-group ABs, so a multi-group
        # submit is admitted or rejected atomically — never half-sent.
        self.flow = None
        # Cumulative high-water mark of the pending table (spans
        # incarnations; sampled by the overload-safety verifier).
        self.pending_high_water = 0

    # -- lifecycle -------------------------------------------------------------

    def on_start(self) -> None:
        node = self.node
        assert node is not None
        self.clock = {g: 0 for g in self.group_abs}
        self.pending = {}
        self.delivered = {g: [] for g in self.group_abs}
        self._finalized = {g: [] for g in self.group_abs}
        self._listeners = []
        self._relayed = set()
        self._seq = 0
        for group, abcast in self.group_abs.items():
            abcast.add_listener(_GroupTap(self, group))
        self.endpoint.register(TimestampAnnounce.type, self._on_announce)
        node.spawn(self._announce_task(), "mg-announce")

    def on_crash(self) -> None:
        self.pending = {}
        self.clock = {}
        self.delivered = {}
        self._finalized = {}
        self._listeners = []

    def _reset_group(self, group: str) -> None:
        self.clock[group] = 0
        self.delivered[group] = []
        self._finalized[group] = []

    # -- upper-layer interface ----------------------------------------------------

    def add_listener(self, listener: MulticastListener) -> None:
        """Subscribe to multicast deliveries (volatile; redo on recovery)."""
        self._listeners.append(listener)

    def multicast(self, payload: Any, groups: Sequence[str]) -> Mid:
        """Total-order multicast ``payload`` to ``groups``.

        The sender must be a member of every destination group (the
        common closed-group model; open multicast would only need the
        relay path that already exists for fault tolerance).
        """
        assert self.node is not None
        destinations = tuple(sorted(set(groups)))
        if not destinations:
            raise BroadcastError("multicast needs at least one group")
        for group in destinations:
            if group not in self.group_abs:
                raise BroadcastError(
                    f"node {self.node.node_id} is not a member of "
                    f"group {group!r}")
        if self.flow is not None:
            # Admission is all-or-nothing: checked before the sequence
            # bump and before any group AB sees the proposal.
            reason = self.flow.try_admit(self.node.sim.now,
                                         len(self.pending))
            if reason is not None:
                raise OverloadError(
                    f"multicast rejected on node {self.node.node_id} "
                    f"({reason})", reason=reason)
        self._seq += 1
        first_ab = self.group_abs[destinations[0]]
        mid: Mid = (self.node.node_id, first_ab.incarnation, self._seq)
        for group in destinations:
            self.group_abs[group].submit(
                (_PROPOSE, mid, destinations, payload))
        return mid

    def delivered_in(self, group: str) -> List[Tuple[Mid, Any]]:
        """This node's delivery sequence for one of its groups."""
        return list(self.delivered.get(group, ()))

    # -- group AB deliveries (deterministic per group) -------------------------------

    def _on_group_delivery(self, group: str, message: AppMessage) -> None:
        payload = message.payload
        if not isinstance(payload, tuple) or not payload:
            return
        tag = payload[0]
        if tag == _PROPOSE:
            _, mid, destinations, body = payload
            self._on_propose(group, tuple(mid), tuple(destinations), body)
        elif tag == _FINAL:
            _, mid, final = payload
            self._on_final(group, tuple(mid), final)

    def _entry(self, mid: Mid, groups: Tuple[str, ...],
               payload: Any) -> _Pending:
        entry = self.pending.get(mid)
        if entry is None:
            entry = _Pending(mid, groups, payload)
            self.pending[mid] = entry  # repro: noqa(RES001) -- pending doubles as duplicate suppression: evicting a delivered entry would re-deliver a late duplicate propose
            if len(self.pending) > self.pending_high_water:
                self.pending_high_water = len(self.pending)
        return entry

    def _on_propose(self, group: str, mid: Mid,
                    destinations: Tuple[str, ...], body: Any) -> None:
        entry = self._entry(mid, destinations, body)
        if group in entry.proposed or group in entry.delivered_in:
            return  # duplicate propose (relay raced the original)
        self.clock[group] += 1
        entry.proposed[group] = self.clock[group]
        if len(destinations) == 1:
            # Single-group fast path: final == proposed, no exchange.
            self._on_final(group, mid, entry.proposed[group])
        else:
            self._maybe_submit_final(entry)
        self._try_deliver(group)

    def _on_final(self, group: str, mid: Mid, final: int) -> None:
        entry = self.pending.get(mid)
        if entry is None or group in entry.delivered_in:
            return
        if entry.final is None:
            entry.final = final
        if mid not in self._finalized[group]:
            self._finalized[group].append(mid)
            self.clock[group] = max(self.clock[group], final)
        self._try_deliver(group)

    def _maybe_submit_final(self, entry: _Pending) -> None:
        """First node with all proposals pushes the final timestamp."""
        if entry.final_submitted or entry.final is not None:
            return
        if set(entry.proposed) != set(entry.groups):
            return
        final = max(entry.proposed.values())
        entry.final_submitted = True
        for group in entry.groups:
            if group in self.group_abs and \
                    group not in entry.delivered_in:
                self.group_abs[group].submit((_FINAL, entry.mid, final))

    # -- delivery rule ------------------------------------------------------------------

    def _try_deliver(self, group: str) -> None:
        if group not in self.group_abs:
            return
        progressed = True
        while progressed:
            progressed = False
            candidates = [
                self.pending[mid] for mid in self._finalized[group]
                if group not in self.pending[mid].delivered_in]
            if not candidates:
                return
            candidates.sort(key=lambda e: (e.final, e.mid))
            head = candidates[0]
            # Hold back while a message not yet finalised *in this
            # group's order* could sort before it (its proposed
            # timestamp is a lower bound on its final one).  The test
            # must use group-local knowledge only: a bridge node that
            # already learned the final through its other group must
            # still wait for this group's own finalisation position,
            # or it would deliver earlier than pure members.
            blockers = [
                entry for entry in self.pending.values()
                if group in entry.proposed
                and group not in entry.delivered_in
                and entry.mid not in self._finalized[group]
                and (entry.proposed[group], entry.mid)
                < (head.final, head.mid)]
            if blockers:
                return
            self._deliver(group, head)
            progressed = True

    def _deliver(self, group: str, entry: _Pending) -> None:
        entry.delivered_in.add(group)
        self.delivered[group].append((entry.mid, entry.payload))
        self.mdelivered_count += 1
        for listener in self._listeners:
            listener.on_mdeliver(group, entry.mid, entry.payload)

    # -- cross-group exchange and relay ---------------------------------------------------

    def _announce_task(self):
        while True:
            yield self.announce_interval
            self._announce_once()

    def _announce_once(self) -> None:
        """Send proposals (and relay bodies) for unfinalised messages."""
        outbox: Dict[int, list] = {}
        for entry in self.pending.values():
            if entry.final is not None or len(entry.groups) == 1:
                continue
            targets = set()
            for group in entry.groups:
                if group not in entry.proposed:
                    # Relay the body to groups that have not proposed yet
                    # (covers sender crash after a partial submit).
                    targets.update(self.memberships.get(group, ()))
            for group in entry.groups:
                targets.update(self.memberships.get(group, ()))
            record = [list(entry.mid), list(entry.groups), entry.payload,
                      dict(entry.proposed)]
            for target in targets:
                if target != self.endpoint.node_id:
                    outbox.setdefault(target, []).append(record)
        for target, entries in outbox.items():
            self.endpoint.send(target, TimestampAnnounce(entries))

    def _on_announce(self, msg: TimestampAnnounce, sender: int) -> None:
        for record in msg.entries:
            mid = tuple(record[0])
            groups = tuple(record[1])
            payload = record[2]
            proposals = record[3]
            entry = self._entry(mid, groups, payload)
            if entry.final is not None:
                continue
            for group, ts in proposals.items():
                # CRITICAL for determinism: a proposal for one of *my*
                # groups may only come from that group's own delivery
                # order (it also advances the group clock there); gossip
                # may only teach me about groups I am not in.
                if group not in self.group_abs:
                    entry.proposed.setdefault(group, int(ts))
            # Relay into my own groups that have not proposed it yet
            # (covers a sender that crashed after a partial submit).
            for group in groups:
                if (group in self.group_abs
                        and group not in entry.proposed
                        and group not in entry.delivered_in
                        and (mid, group) not in self._relayed):
                    self._relayed.add((mid, group))  # repro: noqa(RES001) -- relay dedup must remember every (mid, group) pair a crashed sender might leave half-submitted
                    self.group_abs[group].submit(
                        (_PROPOSE, mid, groups, payload))
            self._maybe_submit_final(entry)
