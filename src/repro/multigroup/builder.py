"""Cluster builder for multi-group total order multicast.

Assembles, per node, one full Atomic Broadcast stack per group the node
belongs to — each on a :class:`~repro.transport.scoped.ScopedEndpoint`
(group-restricted peers, namespaced message types) with namespaced
stable-storage keys — plus the
:class:`~repro.multigroup.multicast.MultiGroupMulticast` layer on top.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.consensus.paxos import PaxosConsensus
from repro.core.basic import BasicAtomicBroadcast
from repro.errors import SimulationError
from repro.fdetect.heartbeat import HeartbeatDetector
from repro.fdetect.omega import OmegaOracle
from repro.multigroup.multicast import MultiGroupMulticast
from repro.runtime import Node, SeedSequence, Simulator
from repro.storage.memory import MemoryStorage
from repro.transport.endpoint import Endpoint
from repro.transport.network import Network, NetworkConfig
from repro.transport.scoped import ScopedEndpoint

__all__ = ["MultiGroupCluster"]


class MultiGroupCluster:
    """A cluster whose nodes belong to (possibly overlapping) groups.

    Parameters
    ----------
    groups:
        ``{group name: sequence of member node ids}``.  The node set is
        the union of all memberships.
    seed:
        Root seed for the deterministic run.
    network:
        Fair-lossy network configuration shared by all groups.
    """

    def __init__(self, groups: Dict[str, Sequence[int]], seed: int = 0,
                 network: Optional[NetworkConfig] = None,
                 gossip_interval: float = 0.25):
        if not groups:
            raise SimulationError("at least one group is required")
        self.groups = {name: tuple(sorted(set(members)))
                       for name, members in groups.items()}
        node_ids = sorted({member for members in self.groups.values()
                           for member in members})
        if node_ids != list(range(len(node_ids))):
            raise SimulationError(
                "node ids must be dense 0..n-1 across the group union")
        self.sim = Simulator()
        self.seeds = SeedSequence(seed)
        self.network = Network(self.sim, self.seeds.stream("network"),
                               network or NetworkConfig())
        self.nodes: Dict[int, Node] = {}
        self.layers: Dict[int, MultiGroupMulticast] = {}
        self.group_abs: Dict[int, Dict[str, BasicAtomicBroadcast]] = {}
        for node_id in node_ids:
            self._build_node(node_id, gossip_interval)

    def _build_node(self, node_id: int, gossip_interval: float) -> None:
        node = Node(self.sim, node_id, MemoryStorage())
        endpoint = node.add_component(Endpoint(self.network))
        abs_for_node: Dict[str, BasicAtomicBroadcast] = {}
        for group, members in sorted(self.groups.items()):
            if node_id not in members:
                continue
            scoped = ScopedEndpoint(endpoint, group, members)
            detector = node.add_component(HeartbeatDetector(scoped))
            # Namespace the FD epoch key too: one epoch per group stack.
            detector.EPOCH_KEY = (f"fd@{group}", "epoch")
            omega = node.add_component(OmegaOracle(detector))
            consensus = node.add_component(PaxosConsensus(
                scoped, omega, namespace=group))
            abcast = node.add_component(BasicAtomicBroadcast(
                scoped, consensus, gossip_interval=gossip_interval,
                namespace=group))
            abs_for_node[group] = abcast
        layer = node.add_component(MultiGroupMulticast(
            endpoint, abs_for_node, self.groups))
        self.network.register(node)
        self.nodes[node_id] = node
        self.layers[node_id] = layer
        self.group_abs[node_id] = abs_for_node

    # -- control ---------------------------------------------------------------

    def start(self) -> None:
        for node in self.nodes.values():
            node.start()

    def run(self, until: float) -> float:
        return self.sim.run(until=until)

    def multicast(self, node_id: int, payload: Any,
                  groups: Sequence[str]):
        """Multicast from ``node_id`` to ``groups`` (non-blocking).

        Harness convenience: a multicast scheduled while the node is
        down is silently skipped (a down process cannot invoke the
        primitive), mirroring the workload generators.
        """
        if not self.nodes[node_id].up:
            return None
        return self.layers[node_id].multicast(payload, groups)

    def members_of(self, group: str) -> Tuple[int, ...]:
        return self.groups[group]

    # -- verification helpers ------------------------------------------------------

    def sequences(self, group: str) -> Dict[int, List]:
        """Per-member delivery sequence for one group."""
        return {node_id: self.layers[node_id].delivered_in(group)
                for node_id in self.groups[group]}

    def check_group_agreement(self, group: str) -> None:
        """Every member of a group delivered the same prefix-ordered run."""
        sequences = list(self.sequences(group).values())
        for seq in sequences[1:]:
            shorter, longer = sorted((seq, sequences[0]), key=len)
            if longer[:len(shorter)] != shorter:
                raise SimulationError(
                    f"group {group!r} members diverge: "
                    f"{shorter} vs {longer[:len(shorter)]}")

    def check_pairwise_total_order(self) -> None:
        """Messages shared by any two delivery sequences (across any
        groups/nodes) appear in the same relative order everywhere."""
        all_sequences = []
        for group in self.groups:
            for seq in self.sequences(group).values():
                all_sequences.append([mid for mid, _ in seq])
        position: Dict[tuple, Dict[tuple, int]] = {}
        for seq in all_sequences:
            index = {mid: pos for pos, mid in enumerate(seq)}
            for other in all_sequences:
                shared = [mid for mid in other if mid in index]
                ranks = [index[mid] for mid in shared]
                if ranks != sorted(ranks):
                    raise SimulationError(
                        "pairwise total order violated across groups")
