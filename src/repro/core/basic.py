"""The basic Atomic Broadcast protocol (Figure 2 of the paper).

One consensus-driven ordering loop per process, in consecutive rounds:

* round ``k`` proposes the node's ``Unordered`` set to the ``k``-th
  consensus instance and moves the decided batch to the ``Agreed`` queue
  (deterministically ordered, duplicates eliminated);
* a **gossip task** periodically multisends ``(k, Unordered)`` — it both
  disseminates data messages (no reliable multicast needed over the
  fair-loss channel) and lets lagging processes discover how far behind
  they are (``gossip-k``);
* the only stable-storage write is the consensus *proposal* — performed
  inside ``propose`` as its first operation — so Atomic Broadcast adds
  **zero** log operations beyond the Consensus black box (Section 4.3);
* on initialisation **or** recovery the ``replay`` procedure re-runs
  every instance that has a logged proposal: ``propose`` is idempotent
  and decisions are locked, so the Agreed queue is rebuilt exactly.

The replay and the steady-state sequencer are one loop: for each round,
"re-propose the logged value if there is one, otherwise wait for work
and propose the Unordered set".  This matches the paper's observation
that the current round is simply the first round with no logged proposal.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from repro.consensus.base import ConsensusService
from repro.core.agreed import AgreedQueue, deterministic_order
from repro.core.ids import MessageId
from repro.core.messages import AppMessage, GossipMessage
from repro.errors import BroadcastError, OverloadError
from repro.runtime import NodeComponent, Signal
from repro.transport.endpoint import Endpoint

__all__ = ["BasicAtomicBroadcast", "DeliveryListener"]


class DeliveryListener:
    """Upcall interface for the application layer (Figure 1 / Figure 5).

    ``on_deliver`` receives each A-delivered message, in delivery order.
    ``on_restore`` replaces the application state wholesale — it fires
    when the queue is rebuilt from a checkpoint or adopted through a
    state transfer; ``state`` is whatever the application previously
    returned from its A-checkpoint upcall (``None`` for the initial
    state, the paper's ``A-checkpoint(⊥)``).
    """

    def on_deliver(self, message: AppMessage) -> None:
        """One ordered message became deliverable."""

    def on_restore(self, state: Any) -> None:
        """The delivery prefix was replaced by an application checkpoint."""


class BasicAtomicBroadcast(NodeComponent):
    """Figure 2: minimal-logging Atomic Broadcast for crash-recovery.

    Parameters
    ----------
    endpoint:
        The node's transport endpoint (``send``/``multisend``/handlers).
    consensus:
        The consensus black box (Section 3.2 interface).
    gossip_interval:
        Period of the gossip task, in virtual time.
    """

    name = "atomic-broadcast"

    INCARNATION_KEY = ("ab", "incarnation")

    # Volatile mirror of the durable incarnation counter, patrolled by the
    # WAL001 lint: a message id minted from an unlogged incarnation could
    # collide after recovery (Section 4.1's unique-id requirement).
    VOLATILE_FIELDS = ("incarnation",)

    def __init__(self, endpoint: Endpoint, consensus: ConsensusService,
                 gossip_interval: float = 0.25, namespace: str = "",
                 order_rule=None):
        super().__init__()
        # A non-empty namespace isolates this instance's durable state —
        # one Atomic Broadcast stack per process group (Section 6.4).
        self.namespace = namespace
        if namespace:
            self.INCARNATION_KEY = (f"ab@{namespace}", "incarnation")
        # The predetermined deterministic batch-ordering rule
        # (Section 4.2): any rule works, but it MUST be cluster-uniform.
        self.order_rule = order_rule or deterministic_order
        self.endpoint = endpoint
        self.consensus = consensus
        self.gossip_interval = gossip_interval
        # Volatile protocol state (Figure 2 "initial values").
        self.k = 0
        self.unordered: Dict[MessageId, AppMessage] = {}
        self.agreed = AgreedQueue(self.order_rule)
        self.gossip_k = 0
        # Volatile plumbing.
        self.incarnation = 0
        self._seq = 0
        self._progress: Signal = None  # type: ignore[assignment]
        self._delivered: Signal = None  # type: ignore[assignment]
        self._listeners: List[DeliveryListener] = []
        self._sequencer_task = None
        self.replay_complete = False
        # Optional membership layer (a ViewManager); wired by the
        # harness before the node starts.  When set it is re-subscribed
        # as the first delivery listener on every start, so views
        # install before the application observes the command.
        self.view_manager = None
        self._joining = False
        # Run statistics (volatile; the harness samples them).
        self.rounds_completed = 0
        self.messages_delivered = 0
        self.replayed_rounds = 0
        # Optional admission control (a repro.flow.FlowController); wired
        # by the harness.  None (the default) admits everything — the
        # flow layer must be invisible unless explicitly configured.
        self.flow = None
        # Cumulative high-water mark of the Unordered buffer.  Survives
        # crashes deliberately: it observes the incarnation-spanning
        # worst case for the overload-safety verifier.
        self.unordered_high_water = 0

    # -- lifecycle (upon initialization or recovery) -------------------------------

    def on_start(self) -> None:
        node = self.node
        assert node is not None
        self.k = 0
        self.unordered = {}
        self.agreed = AgreedQueue(self.order_rule)
        self.gossip_k = 0
        self.replay_complete = False
        self._progress = node.sim.signal(f"ab-progress@{node.node_id}")
        self._delivered = node.sim.signal(f"ab-delivered@{node.node_id}")
        self._listeners = []
        if self.view_manager is not None:
            self._listeners.append(self.view_manager)
        self._bump_incarnation()
        self._seq = 0
        self._joining = False
        self._restore_volatile_state()
        self.endpoint.register(GossipMessage.type, self._on_gossip)
        # (a) fork task { sequencer and gossip }
        self._sequencer_task = node.spawn(self._sequencer(), "ab-sequencer")
        node.spawn(self._gossip_task(), "ab-gossip")

    def _bump_incarnation(self) -> None:
        """Durable incarnation bump: restarted sequence counters mint
        fresh message ids (see :mod:`repro.core.ids`).  The crash-stop
        baseline overrides this with a volatile counter."""
        assert self.node is not None
        self.incarnation = int(self.node.storage.retrieve(
            self.INCARNATION_KEY, 0)) + 1
        self.log_before_send(self.INCARNATION_KEY, self.incarnation)  # repro: noqa(REC003) -- Section 4.1: the incarnation MUST advance monotonically per recovery; a crash mid-bump only skips ids, never reuses one

    def log_before_send(self, key, value) -> None:
        """Write-ahead barrier: persist ``value`` under ``key`` before any
        message depending on it leaves this node.  The incarnation must be
        on disk before on_start spawns the gossip/sequencer tasks — they
        advertise it in every message id."""
        assert self.node is not None
        self.node.storage.log(key, value)

    def _restore_volatile_state(self) -> None:
        """Hook for subclasses: load checkpointed state before replay.

        The basic protocol logs nothing beyond consensus proposals, so the
        replay starts from round 0 with an empty queue.
        """

    def on_crash(self) -> None:
        self.k = 0
        self.unordered = {}
        self.agreed = AgreedQueue(self.order_rule)
        self.gossip_k = 0
        self._listeners = []
        self._sequencer_task = None
        self.replay_complete = False

    # -- upper-layer interface (Figure 1) ----------------------------------------------

    def add_listener(self, listener: DeliveryListener) -> None:
        """Subscribe to delivery upcalls (volatile; redo after recovery)."""
        self._listeners.append(listener)

    def submit(self, payload: Any) -> AppMessage:
        """Non-blocking ``A-broadcast``: enqueue and return immediately.

        The paper's blocking semantics (return only once the message is
        ordered or durably logged) are provided by :meth:`broadcast`.
        """
        assert self.node is not None
        if not self.node.up:
            raise BroadcastError("A-broadcast on a down process")
        if self.flow is not None:
            # Gate before the sequence bump: a rejected submission must
            # leave no trace (no id consumed, no buffer entry).
            reason = self.flow.try_admit(self.node.sim.now,
                                         len(self.unordered))
            if reason is not None:
                raise OverloadError(
                    f"A-broadcast rejected on node {self.node.node_id} "
                    f"({reason})", reason=reason)
        self._seq += 1
        message = AppMessage(
            MessageId(self.node.node_id, self.incarnation, self._seq),
            payload)
        self._admit_locally(message)
        return message

    def _admit_locally(self, message: AppMessage) -> None:
        """``Unordered ← (Unordered ∪ {m}) − Agreed``."""
        if message not in self.agreed and message.id not in self.unordered:
            self.unordered[message.id] = message
            if len(self.unordered) > self.unordered_high_water:
                self.unordered_high_water = len(self.unordered)
            self._progress.notify()

    def broadcast(self, payload: Any) -> Generator[Any, Any, AppMessage]:
        """The paper's ``A-broadcast(m)``: returns once ``m ∈ Agreed``.

        If the process crashes before this returns, the message may or
        may not have been broadcast — exactly the paper's contract.
        """
        message = self.submit(payload)
        while message not in self.agreed:
            yield self._delivered.wait()
        return message

    def deliver_sequence(self) -> List[AppMessage]:
        """The paper's ``A-deliver-sequence()``: the explicit Agreed tail."""
        return self.agreed.sequence()

    def delivered_count(self) -> int:
        """Total messages delivered (including any checkpointed prefix)."""
        return len(self.agreed)

    def has_backlog(self, ordered=None) -> bool:
        """True while this node holds messages not yet known ordered.

        ``ordered`` is an optional collection of
        :class:`~repro.core.ids.MessageId` already delivered somewhere in
        the cluster (the harness's omniscient record): messages in it are
        not backlog for settling purposes — this node merely lags and
        will catch up by gossip, without needing another round.
        """
        if not self.unordered:
            return False
        if ordered is None:
            return True
        return any(mid not in ordered for mid in self.unordered)

    # -- gossip task --------------------------------------------------------------------

    def _gossip_task(self):
        while True:
            # A joining node advertises round -1: it holds no usable
            # prefix, so any member treats it as maximally behind and
            # answers with a state transfer (Section 5.3) regardless of
            # how short the member's own history still is.
            k = -1 if self._joining else self.k
            self.endpoint.multisend(
                GossipMessage(k, frozenset(self.unordered.values()),
                              self._checkpoint_round()))
            yield self.gossip_interval

    def _on_gossip(self, msg: GossipMessage, sender: int) -> None:
        """Reception of ``gossip(k_q, U_q)`` (executed atomically)."""
        for message in msg.unordered:
            self._admit_locally(message)
        self._note_peer_checkpoint(sender, msg.ckpt_k)
        if msg.k > self.k:
            self.gossip_k = max(self.gossip_k, msg.k)  # q was ahead
            self._progress.notify()
        else:
            self._peer_behind(sender, msg.k)

    def _checkpoint_round(self) -> int:
        """Round covered by this node's durable checkpoint (basic: none)."""
        return 0

    def _note_peer_checkpoint(self, sender: int, ckpt_k: int) -> None:
        """Hook for subclasses: watermark bookkeeping for log truncation."""

    def _peer_behind(self, sender: int, peer_k: int) -> None:
        """Hook for subclasses: a peer lags behind us (state transfer)."""

    # -- sequencer task --------------------------------------------------------------------

    def _sequencer(self):
        assert self.node is not None
        self._announce_restore()
        while self._joining:
            # A joining node must not propose from round 0 — it waits for
            # a member's state transfer (which clears the gate and
            # re-forks this task).  Gossip keeps running meanwhile, so
            # members both learn of the joiner's submissions and see its
            # round number lag, triggering the transfer.
            yield self._progress.wait()
        while True:
            logged = self.consensus.proposal_of(self.k)
            if logged is not None:
                # Replay (or idempotent re-join of the in-flight round).
                self.consensus.propose(self.k, logged)
                if not self.replay_complete:
                    self.replayed_rounds += 1
            else:
                if not self.replay_complete:
                    self._finish_replay()
                # wait until (Unordered ≠ ∅) or (gossip-k > k)
                while not self.unordered and self.gossip_k <= self.k:
                    yield self._progress.wait()
                # Propose the Unordered set — possibly empty, when we only
                # know we lagged behind (the decision for this round was
                # taken without our proposal anyway).
                value = frozenset(self.unordered.values())
                self.consensus.propose(self.k, value)
            result = yield from self.consensus.wait_decided(self.k)
            self._commit_round(result)

    def _commit_round(self, result) -> None:
        """Move the decided batch to Agreed and open the next round.

        Bracketed in the paper: executed atomically w.r.t. gossip handling
        (trivially true here — the kernel is single-threaded and this
        method never yields).
        """
        appended = self.agreed.append_batch(result)
        self.node.sim.trace("round", self.node.node_id, "commit",
                            k=self.k, batch=len(result),
                            new=len(appended))
        self.k += 1
        self.rounds_completed += 1
        # Unordered ← Unordered − Agreed
        for message in appended:
            self.unordered.pop(message.id, None)
        self.messages_delivered += len(appended)
        for message in appended:
            for listener in self._listeners:
                listener.on_deliver(message)
        if appended:
            self._delivered.notify()
        self._after_round()

    def _after_round(self) -> None:
        """Hook for subclasses (checkpointing, batching bookkeeping)."""

    def _announce_restore(self) -> None:
        """Hook for subclasses: replay a restored checkpoint to listeners.

        Runs as the sequencer's first step — after every component's
        ``on_start`` has executed, so application listeners are already
        subscribed.
        """

    def _finish_replay(self) -> None:
        """Replay done: the node is caught up with its own log."""
        assert self.node is not None
        self.replay_complete = True
        self.node.mark_recovery_complete()
