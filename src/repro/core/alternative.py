"""The alternative Atomic Broadcast protocol (Figures 3 and 4, Section 5).

Extends the basic protocol with four independently-toggleable features,
each trading extra log operations for a practical benefit:

* **Durable checkpoints of ``(k, Agreed)``** (Section 5.1) — a periodic
  checkpoint task logs the round number and the Agreed queue, so recovery
  restarts from the checkpoint instead of replaying every consensus
  instance from round 0.  Consensus logs below the checkpoint are
  discarded (Figure 4, line c).
* **Application-level checkpoints** (Section 5.2) — when the application
  registers an ``A-checkpoint`` upcall, the delivered prefix of the
  Agreed queue is replaced by ``(A-checkpoint(σ), VC(σ))``: the log stops
  growing with history and the replay phase shrinks to the suffix.
* **State transfer** (Section 5.3) — a process that sees a peer more than
  ``delta`` rounds behind sends it a ``state`` message carrying
  ``(k_p − 1, Agreed_p)``; the late process aborts its sequencer, adopts
  the state, and re-forks the sequencer past the missed instances
  (Figure 3, lines d–f).
* **Logged Unordered set** (Sections 5.4/5.5) — ``A-broadcast`` logs the
  message (incrementally, by default: only the new element is written)
  and returns as soon as it is durable, instead of waiting for the
  message to be ordered; batches then flow into single consensus
  instances.

Every feature defaults to the paper's recommended setting; construct
:class:`AlternativeConfig` to explore the trade-offs (the E3–E7
benchmarks do exactly that).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.consensus.base import ConsensusService
from repro.core.agreed import AgreedQueue
from repro.core.basic import BasicAtomicBroadcast
from repro.core.messages import AppMessage, StateMessage
from repro.transport.endpoint import Endpoint

__all__ = ["AlternativeAtomicBroadcast", "AlternativeConfig"]


class AlternativeConfig:
    """Feature switches of the Section 5 protocol.

    Parameters
    ----------
    checkpoint_interval:
        Period of the checkpoint task (virtual time); ``None`` disables
        durable checkpoints (degenerating towards the basic protocol).
        The paper: "the frequency of this checkpointing has no impact on
        correctness and is an implementation choice".
    delta:
        De-synchronisation (in rounds) that triggers a state transfer to
        a lagging peer; ``None`` disables state transfer.
    log_unordered:
        When ``True``, ``A-broadcast`` logs the Unordered set and returns
        once the message is durable (Section 5.4).
    incremental:
        When ``True`` (and ``log_unordered``), only the new message is
        appended to the log instead of re-logging the whole set
        (Section 5.5).
    state_resend_interval:
        Minimum virtual time between two state messages to the same peer
        (a practical throttle; the paper sends on every trigger).
    """

    def __init__(self,
                 checkpoint_interval: Optional[float] = 2.0,
                 delta: Optional[int] = 3,
                 log_unordered: bool = False,
                 incremental: bool = True,
                 state_resend_interval: float = 1.0):
        if delta is not None and delta < 1:
            raise ValueError("delta must be >= 1 (or None to disable)")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        self.checkpoint_interval = checkpoint_interval
        self.delta = delta
        self.log_unordered = log_unordered
        self.incremental = incremental
        self.state_resend_interval = state_resend_interval


class AlternativeAtomicBroadcast(BasicAtomicBroadcast):
    """Figures 3–4: the basic protocol plus Section 5 optimisations."""

    name = "atomic-broadcast-alt"

    CHECKPOINT_KEY = ("ab", "ckpt")
    UNORDERED_KEY = ("ab", "unordered")
    JOINING_KEY = ("ab", "joining")

    # In addition to the inherited incarnation mirror, ckpt_k mirrors the
    # durable checkpoint round: gossip advertises it to drive peer-side
    # log truncation (Figure 4, line c), so it must never run ahead of
    # the logged checkpoint.
    VOLATILE_FIELDS = ("incarnation", "ckpt_k")

    def __init__(self, endpoint: Endpoint, consensus: ConsensusService,
                 gossip_interval: float = 0.25,
                 config: Optional[AlternativeConfig] = None,
                 namespace: str = ""):
        super().__init__(endpoint, consensus, gossip_interval, namespace)
        if namespace:
            self.CHECKPOINT_KEY = (f"ab@{namespace}", "ckpt")
            self.UNORDERED_KEY = (f"ab@{namespace}", "unordered")
            self.JOINING_KEY = (f"ab@{namespace}", "joining")
        self.config = config or AlternativeConfig()
        self._app_checkpoint: Optional[Callable[[], Any]] = None
        self._pending_restore = False
        self._last_state_sent: dict = {}
        self.ckpt_k = 0
        self._peer_ckpt: dict = {}
        # Statistics.
        self.checkpoints_taken = 0
        self.state_transfers_sent = 0
        self.state_transfers_adopted = 0
        self.rounds_skipped = 0
        self.instances_discarded = 0

    # -- upper-layer additions (Figure 5) --------------------------------------------

    def register_checkpoint_provider(self,
                                     provider: Callable[[], Any]) -> None:
        """Register the application's ``A-checkpoint`` upcall.

        ``provider()`` must return a snapshot of the application state
        that *contains* every message delivered so far.  Volatile: re-do
        after each recovery (the application's ``on_start``).
        """
        self._app_checkpoint = provider

    def broadcast(self, payload: Any) -> Generator[Any, Any, AppMessage]:
        """``A-broadcast(m)`` with the Section 5.4 early return.

        When the Unordered set is logged, durability — not ordering — is
        what guarantees the message survives a crash of its sender, so
        the call returns as soon as the log write completes.
        """
        if not self.config.log_unordered:
            result = yield from super().broadcast(payload)
            return result
        return self.submit(payload)

    # -- lifecycle ------------------------------------------------------------------------

    def on_start(self) -> None:
        self._last_state_sent = {}
        self._pending_restore = False
        self.ckpt_k = 0
        self._peer_ckpt = {}
        super().on_start()
        self.endpoint.register(StateMessage.type, self._on_state)
        if self.config.checkpoint_interval is not None:
            assert self.node is not None
            self.node.spawn(self._checkpoint_task(), "ab-checkpoint")

    def mark_joining(self) -> None:
        """Flag this stack as a joiner bootstrapping by state transfer.

        Called by the harness before the node starts (the flag is
        durable, so a crash mid-join resumes the join).  A joining node's
        sequencer proposes nothing: the node would otherwise start
        proposing at round 0, whose consensus logs the members may have
        long since truncated (Figure 4, line c).  Instead it advertises
        round ``-1`` in its gossip — "I have nothing; transfer
        everything" — and any member answers with a ``state`` message,
        which completes the join (:meth:`_complete_join`).
        """
        assert self.node is not None
        self.node.storage.log(self.JOINING_KEY, True)
        self._joining = True

    def _restore_volatile_state(self) -> None:
        """Recovery, Figure 3: retrieve ``(k, Agreed)`` and ``Unordered``."""
        assert self.node is not None
        self._joining = bool(self.node.storage.retrieve(
            self.JOINING_KEY, False))
        stored = self.node.storage.retrieve(self.CHECKPOINT_KEY, None)
        if stored is not None:
            stored_k, agreed_plain = stored
            self.k = int(stored_k)
            self.ckpt_k = self.k
            self.agreed = AgreedQueue.from_plain(agreed_plain,
                                                 self.order_rule)
            self._pending_restore = True
            # Re-arm the consensus participation floor before any
            # message of the new incarnation arrives (the floor itself
            # is volatile).  The checkpoint round over-approximates what
            # was actually garbage-collected, so only do this once the
            # membership has ever changed: a GC that can strand a
            # process requires the watermark to have passed a down
            # process's checkpoint, which only an ordered removal makes
            # possible — and that removal's epoch is durable in the view
            # record by the time such a GC runs.  Under a static view
            # the floor stays 0 and recovery behaves exactly as before.
            if self.view_manager is not None \
                    and self.view_manager.epoch() > 0:
                self.consensus.set_instance_floor(self.k)
        if self.config.log_unordered:
            for message in self.node.storage.retrieve_list(
                    self.UNORDERED_KEY):
                # Volatile admission only (the base class never logs):
                # these messages are already in the durable Unordered
                # list, and the incremental-mode append in our override
                # would re-append every one of them on each recovery,
                # doubling the log per crash.
                super()._admit_locally(message)

    def _announce_restore(self) -> None:
        """Replay the restored checkpoint to freshly-subscribed listeners."""
        if not self._pending_restore:
            return
        self._pending_restore = False
        for listener in self._listeners:
            listener.on_restore(self.agreed.checkpoint_state)
        for message in self.agreed.sequence():
            for listener in self._listeners:
                listener.on_deliver(message)
        self.messages_delivered += len(self.agreed)

    # -- Section 5.4/5.5: logged Unordered set ------------------------------------------------

    def _admit_locally(self, message: AppMessage) -> None:
        if message.id in self.unordered or message in self.agreed:
            return  # idempotent: duplicates are dropped, nothing logged
        super()._admit_locally(message)
        if self.config.log_unordered:
            assert self.node is not None
            if self.config.incremental:
                # Only the new part of the set is written (Section 5.5).
                self.node.storage.append(self.UNORDERED_KEY, message)
            else:
                self.node.storage.log(
                    self.UNORDERED_KEY, list(self.unordered.values()))

    # -- Section 5.1/5.2: checkpoint task (Figure 4) --------------------------------------------

    def _checkpoint_task(self):
        assert self.node is not None
        interval = self.config.checkpoint_interval
        while True:
            yield interval
            self.take_checkpoint()

    def take_checkpoint(self) -> None:
        """One pass of the checkpoint task (also callable explicitly).

        Atomic w.r.t. round commits and gossip handling (the bracketed
        line b of Figure 4): the kernel is single-threaded and this
        method never yields.
        """
        assert self.node is not None
        if self._app_checkpoint is not None:
            # (b) Agreed ← (A-checkpoint(Agreed), VC(Agreed))
            self.agreed.compact(self._app_checkpoint())
        # The checkpoint writes form one logical step whose records are
        # each individually safe to lose (a stale checkpoint or a fat
        # Unordered log only cost replay work), so a write barrier lets
        # durable backends coalesce their per-rename flushes.
        with self.node.storage.write_barrier():
            self.node.storage.log(self.CHECKPOINT_KEY,
                                  [self.k, self.agreed.to_plain()])
            self.ckpt_k = self.k
            # (c) Proposed[i] can be discarded from the log — but only
            # below the *global* watermark (the lowest checkpointed round
            # any peer has reported): instances above it may still be
            # replayed by a lagging peer, and discarding their decisions
            # would strand it.
            self.instances_discarded += \
                self.consensus.discard_instances_below(self._gc_watermark())
            if self.config.log_unordered:
                # Rewrite the Unordered log compactly (drops ordered
                # messages).
                self.node.storage.log(self.UNORDERED_KEY,
                                      list(self.unordered.values()))
        self.checkpoints_taken += 1
        self.node.sim.trace("checkpoint", self.node.node_id, "taken",
                            k=self.k, watermark=self._gc_watermark())

    def _checkpoint_round(self) -> int:
        return self.ckpt_k

    def _note_peer_checkpoint(self, sender: int, ckpt_k: int) -> None:
        previous = self._peer_ckpt.get(sender, 0)
        if ckpt_k > previous:
            self._peer_ckpt[sender] = ckpt_k

    def _gc_watermark(self) -> int:
        """Highest round below which no process can ever need a consensus
        log entry again.

        Every process restarts at its own durable checkpoint round, so
        instances below ``min(checkpointed rounds)`` are dead globally.
        Peers we have not heard a checkpoint round from contribute 0,
        which simply makes the watermark conservative.
        """
        assert self.node is not None
        watermark = self.ckpt_k
        for peer in self.endpoint.peers():
            if peer == self.node.node_id:
                continue
            watermark = min(watermark, self._peer_ckpt.get(peer, 0))
        return watermark

    # -- Section 5.3: state transfer ----------------------------------------------------------------

    def _peer_behind(self, sender: int, peer_k: int) -> None:
        """Gossip reception, line d: ``k_p > k_q + Δ`` ⇒ send state.

        A negative ``peer_k`` marks a *joining* peer (see
        :meth:`mark_joining`): it is answered whatever the lag, since its
        join cannot complete without a state message.
        """
        delta = self.config.delta
        assert self.node is not None
        if delta is None or sender == self.node.node_id:
            return
        # A peer is *stranded* when the round it is working on lies
        # below our garbage-collection floor: its decision records are
        # gone here, no Decide reply can ever reach it and acceptors
        # below their floor stay silent, so a state message is its only
        # way forward — send one whatever the lag.  Only possible after
        # a reconfiguration (the watermark passes a down peer's
        # checkpoint only once a removal excludes it), so the epoch gate
        # keeps reordered stragglers in static runs on the plain Δ rule.
        stranded = (self.view_manager is not None
                    and self.view_manager.epoch() > 0
                    and 0 <= peer_k < self.consensus.instance_floor)
        if peer_k >= 0 and not stranded and self.k <= peer_k + delta:
            return
        now = self.node.sim.now
        last = self._last_state_sent.get(sender, -float("inf"))
        if now - last < self.config.state_resend_interval:
            return
        self._last_state_sent[sender] = now
        view_plain = (self.view_manager.to_plain()
                      if self.view_manager is not None else None)
        self.endpoint.send(sender,
                           StateMessage(self.k - 1, self.agreed.to_plain(),
                                        view_plain))
        self.state_transfers_sent += 1
        self.node.sim.trace("state-transfer", self.node.node_id, "sent",
                            to=sender, k=self.k - 1)

    def _on_state(self, msg: StateMessage, sender: int) -> None:
        """Reception of ``state(k_q, A_q)`` (Figure 3, lines e–f)."""
        if self.view_manager is not None:
            # Adopt the sender's view before replaying its queue, so any
            # reconfiguration commands inside the adopted suffix are
            # recognised as already applied.
            self.view_manager.adopt_plain(msg.view_plain)
        if self.k <= msg.k:  # p is late: skip the missed instances
            assert self.node is not None
            # (e) terminate task {sequencer}
            if self._sequencer_task is not None:
                self._sequencer_task.kill()
            skipped = msg.k + 1 - self.k
            self.k = msg.k + 1
            adopted = AgreedQueue.from_plain(msg.agreed_plain,
                                             self.order_rule)
            self.agreed = adopted
            # Listeners are live (we are up): reset and replay the queue.
            for listener in self._listeners:
                listener.on_restore(adopted.checkpoint_state)
            for message in adopted.sequence():
                for listener in self._listeners:
                    listener.on_deliver(message)
            # Unordered ← Unordered − Agreed
            for mid in [mid for mid in self.unordered
                        if self.unordered[mid] in self.agreed]:
                del self.unordered[mid]
            self.rounds_skipped += skipped
            self.state_transfers_adopted += 1
            self.node.sim.trace("state-transfer", self.node.node_id,
                                "adopted", from_=sender, skipped=skipped,
                                new_k=self.k)
            if self._joining:
                self._complete_join()
            self._delivered.notify()
            # (f) fork task {sequencer}
            self._sequencer_task = self.node.spawn(
                self._sequencer(), "ab-sequencer")
        else:
            self.gossip_k = max(self.gossip_k, msg.k)  # small de-sync
            if self._joining:
                # The sender is no further along than we are: the suffix
                # we would miss by starting at our own round is empty,
                # so the join completes in place.
                self._complete_join()
            self._progress.notify()

    def _complete_join(self) -> None:
        """Seal a join: checkpoint the adopted state, clear the flag.

        The checkpoint pins the recovery point at the transfer: if the
        fresh member crashes before its first periodic checkpoint, it
        recovers at the adopted round instead of re-joining from round 0
        (whose consensus logs may already be truncated cluster-wide).
        """
        assert self.node is not None
        with self.node.storage.write_barrier():
            self.node.storage.log(self.CHECKPOINT_KEY,
                                  [self.k, self.agreed.to_plain()])
            self.ckpt_k = self.k
            self.node.storage.log(self.JOINING_KEY, False)
        self.consensus.set_instance_floor(self.ckpt_k)
        self._joining = False
        self.node.sim.trace("state-transfer", self.node.node_id,
                            "join-complete", k=self.k)
        self._progress.notify()
