"""The Agreed queue (Figure 1): ordered, idempotent, checkpointable.

The queue holds the node's delivery sequence.  Structurally it is::

    [ application checkpoint (optional) | suffix of explicit messages ]

* ``append_batch`` implements the paper's ⊕ operation: messages of a
  consensus decision that are not yet in the queue are moved to its tail
  **according to the predetermined deterministic rule** (here: sorted by
  message id), and duplicates are eliminated — the operation is
  idempotent, as Section 4.1 requires.
* ``compact`` implements Section 5.2: the delivered prefix is replaced by
  the pair ``(A-checkpoint(σ), VC(σ))`` — an application state plus a
  :class:`~repro.core.tracker.DeliveredTracker` recording which messages
  the state logically contains.
* ``to_plain`` / ``from_plain`` make the whole queue portable, for the
  ``state`` message of Section 5.3 and for durable checkpoints
  (Section 5.1).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.core.ids import MessageId
from repro.core.messages import AppMessage
from repro.core.tracker import DeliveredTracker
from repro.sizing import estimate_size

__all__ = ["AgreedQueue", "deterministic_order", "sender_round_robin_order"]

OrderRule = Callable[[Iterable[AppMessage]], List[AppMessage]]


def deterministic_order(batch: Iterable[AppMessage]) -> List[AppMessage]:
    """The predetermined deterministic rule of Section 4.2 (default).

    Any rule works as long as every process applies the same one; we sort
    by message id ``(sender, incarnation, seq)``.
    """
    return sorted(batch, key=AppMessage.sort_key)


def sender_round_robin_order(
        batch: Iterable[AppMessage]) -> List[AppMessage]:
    """An alternative deterministic rule (ablation): interleave senders.

    Orders by ``(seq, sender, incarnation)`` so one message per sender is
    taken before any sender's second — a fairness-flavoured rule.  The
    protocol is indifferent to the choice, as long as it is *the same
    everywhere*; the X-ablation tests swap it in (and show that mixing
    rules across nodes is caught by verification).
    """
    return sorted(batch, key=lambda m: (m.id.seq, m.id.sender,
                                        m.id.incarnation))


class AgreedQueue:
    """A node's delivery sequence (volatile; rebuilt or restored on recovery).

    ``order_rule`` is the predetermined deterministic rule applied to
    each decided batch; every process of a cluster must use the same
    one.
    """

    __slots__ = ("checkpoint_state", "checkpoint_tracker", "suffix",
                 "tracker", "order_rule")

    def __init__(self, order_rule: OrderRule = deterministic_order) -> None:
        self.checkpoint_state: Any = None
        self.checkpoint_tracker: Optional[DeliveredTracker] = None
        self.suffix: List[AppMessage] = []
        self.tracker = DeliveredTracker()
        self.order_rule = order_rule

    # -- the ⊕ operation ---------------------------------------------------------

    def append_batch(self, batch: Iterable[AppMessage]) -> List[AppMessage]:
        """Append a decided batch; returns the newly appended messages
        in delivery order (duplicates silently skipped)."""
        appended: List[AppMessage] = []
        for message in self.order_rule(batch):
            if self.tracker.add(message.id):
                self.suffix.append(message)
                appended.append(message)
        return appended

    # -- membership (duplicate elimination) ------------------------------------------

    def __contains__(self, item: Any) -> bool:
        mid = item.id if isinstance(item, AppMessage) else item
        if not isinstance(mid, MessageId):
            mid = MessageId(*mid)
        return mid in self.tracker

    def __len__(self) -> int:
        """Total messages delivered, including those inside the checkpoint."""
        return len(self.tracker)

    @property
    def checkpointed_count(self) -> int:
        """Messages logically contained in the checkpoint."""
        if self.checkpoint_tracker is None:
            return 0
        return len(self.checkpoint_tracker)

    def sequence(self) -> List[AppMessage]:
        """The explicit tail of the delivery sequence (after the checkpoint).

        With no checkpoint this is the node's entire ``A-deliver-sequence``.
        """
        return list(self.suffix)

    # -- Section 5.2: application-level checkpointing -------------------------------------

    def compact(self, state: Any) -> int:
        """Replace the explicit prefix with an application checkpoint.

        ``state`` must be the application state that *contains* every
        message delivered so far (the caller obtains it through the
        A-checkpoint upcall).  Returns the number of messages absorbed.
        """
        absorbed = len(self.suffix)
        self.checkpoint_state = state
        self.checkpoint_tracker = self.tracker.copy()
        self.suffix = []
        return absorbed

    # -- portability (state transfer / durable checkpoints) ----------------------------------

    def to_plain(self) -> list:
        """Codec-friendly snapshot of the whole queue."""
        return [
            self.checkpoint_state,
            None if self.checkpoint_tracker is None
            else self.checkpoint_tracker.to_plain(),
            list(self.suffix),
        ]

    @classmethod
    def from_plain(cls, plain: list,
                   order_rule: OrderRule = deterministic_order
                   ) -> "AgreedQueue":
        """Rebuild a queue from :meth:`to_plain` output."""
        state, tracker_plain, suffix = plain
        queue = cls(order_rule)
        queue.checkpoint_state = state
        if tracker_plain is not None:
            queue.checkpoint_tracker = DeliveredTracker.from_plain(
                tracker_plain)
            queue.tracker = queue.checkpoint_tracker.copy()
        for message in suffix:
            queue.tracker.add(message.id)
            queue.suffix.append(message)
        return queue

    def estimated_size(self) -> int:
        """Wire/log size of the queue snapshot (for E4/E5 accounting)."""
        return estimate_size(self.to_plain())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"AgreedQueue({self.checkpointed_count} checkpointed + "
                f"{len(self.suffix)} explicit)")
