"""Application messages and Atomic Broadcast wire messages.

* :class:`AppMessage` — a payload travelling through Atomic Broadcast,
  identified by a :class:`~repro.core.ids.MessageId` (identity-based
  equality, so sets of messages deduplicate by id exactly as the paper's
  idempotent Unordered/Agreed operations require).
* :class:`GossipMessage` — ``gossip(k_p, Unordered_p)`` of Figure 2.
* :class:`StateMessage` — ``state(k_p - 1, Agreed_p)`` of Figure 3
  (Section 5.3 state transfer).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Tuple

from repro.core.ids import MessageId
from repro.sizing import estimate_size
from repro.storage import codec, snapshot
from repro.transport.message import WireMessage

__all__ = ["AppMessage", "GossipMessage", "StateMessage"]


class AppMessage:
    """An application payload with a unique identity.

    Equality and hashing are by id only: two copies of the same broadcast
    are *the same message*, which is what makes duplicate elimination in
    the Unordered set and the Agreed queue idempotent (Section 4.1).
    Payloads must be immutable (strings, numbers, tuples).
    """

    __slots__ = ("id", "payload", "_size")

    def __init__(self, id: MessageId, payload: Any = None):
        self.id = id
        self.payload = payload
        self._size: Any = None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AppMessage) and self.id == other.id

    def __hash__(self) -> int:
        return hash(self.id)

    def sort_key(self) -> Tuple[int, int, int]:
        """The deterministic batch-ordering rule (Section 4.2)."""
        return tuple(self.id)  # type: ignore[return-value]

    def estimated_size(self) -> int:
        # Immutable payloads (the class contract) make the size a
        # constant; messages are re-measured on every log of a batch or
        # an Unordered set, so computing it once matters.
        size = self._size
        if size is None:
            size = self._size = 12 + estimate_size(self.payload)
        return size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AppMessage({self.id.label()}, {self.payload!r})"


def _message_to_plain(message: AppMessage) -> list:
    return [tuple(message.id), message.payload]


def _message_from_plain(plain: list) -> AppMessage:
    identity, payload = plain
    return AppMessage(MessageId(*identity), payload)


codec.register(AppMessage, "AppMessage", _message_to_plain,
               _message_from_plain)


def _message_snapshot(message: AppMessage, snap: Any) -> tuple:
    # The header (id, payload slots) is frozen by the class contract and
    # equality is by id, so a message with an immutable payload is safe
    # to share with "stable storage"; only a mutable payload (contract
    # violation, but tolerated) forces a copy.
    payload, immutable = snap(message.payload)
    if immutable:
        return message, True
    return AppMessage(message.id, payload), False


snapshot.register_handler(AppMessage, _message_snapshot)


class GossipMessage(WireMessage):
    """``gossip(k, Unordered)``: round number + unordered messages.

    ``ckpt_k`` piggybacks the sender's durably checkpointed round so that
    peers can compute the global garbage-collection watermark (the lowest
    checkpointed round across all processes): consensus logs below the
    watermark can never be needed again by anyone — a recovering process
    restarts at its own checkpoint — so they are safe to discard.  This
    makes the paper's "line c" log truncation safe for *other* processes
    too, not just the local replay (see DESIGN.md, substitutions).
    """

    type = "ab.gossip"
    fields = ("k", "unordered", "ckpt_k")

    def __init__(self, k: int, unordered: FrozenSet[AppMessage],
                 ckpt_k: int = 0):
        self.k = k
        self.unordered = unordered
        self.ckpt_k = ckpt_k


class StateMessage(WireMessage):
    """``state(k, Agreed)``: a finished round number + the sender's queue.

    ``agreed_plain`` is the portable representation produced by
    :meth:`repro.core.agreed.AgreedQueue.to_plain`, so the receiver can
    adopt it wholesale (Section 5.3).

    ``view_plain`` piggybacks the sender's installed membership view
    (:meth:`repro.membership.manager.ViewManager.to_plain`) when the
    stack is view-parameterised; ``None`` under static membership.  The
    receiver adopts the view *before* replaying the transferred suffix,
    so reconfiguration commands inside the suffix are recognised as
    already applied.
    """

    type = "ab.state"
    fields = ("k", "agreed_plain", "view_plain")

    def __init__(self, k: int, agreed_plain: Any, view_plain: Any = None):
        self.k = k
        self.agreed_plain = agreed_plain
        self.view_plain = view_plain
