"""Consensus from Atomic Broadcast (Section 6.1).

The paper notes the reduction in the reverse direction is easy: "to
propose a value a process atomically broadcasts it; the first value to be
delivered can be chosen as the decided value".  This module implements
that reduction literally, closing the equivalence loop:

    crash-recovery Consensus  →  (Figures 2–4)  →  Atomic Broadcast
    Atomic Broadcast          →  (this module)  →  crash-recovery Consensus

Each consensus instance is a tag: ``propose(k, v)`` A-broadcasts
``("cfab", k, v)`` and the decision of instance ``k`` is the value of the
*first* ``("cfab", k, ·)`` message in the total order.  All three
consensus properties follow directly from the Atomic Broadcast
properties:

* *Uniform agreement* — everyone delivers the same first ``k``-tagged
  message (Total Order + Integrity).
* *Uniform validity* — that message was A-broadcast by some proposer
  (Validity).
* *Termination* — a good proposer's broadcast is eventually delivered
  (Termination), and crash-recovery durability is inherited: the decision
  is re-derived during replay, so a recovered process re-learns it
  without any extra logging.

Experiment E10 checks agreement/validity across seeds and faults.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.core.basic import BasicAtomicBroadcast, DeliveryListener
from repro.core.messages import AppMessage
from repro.runtime import NodeComponent, Signal

__all__ = ["ConsensusFromAtomicBroadcast"]

_TAG = "cfab"


class ConsensusFromAtomicBroadcast(NodeComponent, DeliveryListener):
    """The Section 6.1 reduction, as a node component."""

    name = "consensus-from-abcast"

    def __init__(self, abcast: BasicAtomicBroadcast):
        NodeComponent.__init__(self)
        self.abcast = abcast
        self._decisions: Dict[int, Any] = {}
        self._signals: Dict[int, Signal] = {}
        self._proposed: Dict[int, Any] = {}

    # -- lifecycle ----------------------------------------------------------

    def on_start(self) -> None:
        self._decisions = {}
        self._signals = {}
        self._proposed = {}
        # Decisions are re-derived from the replayed delivery sequence:
        # no logging of our own, mirroring the paper's minimality theme.
        self.abcast.add_listener(self)

    def on_crash(self) -> None:
        self._decisions = {}
        self._signals = {}
        self._proposed = {}

    # -- consensus interface -----------------------------------------------------

    def propose(self, k: int, value: Any) -> None:
        """Propose by A-broadcasting the value under the instance tag."""
        if k in self._proposed:
            return  # idempotent
        self._proposed[k] = value
        self.abcast.submit((_TAG, k, value))

    def decided_value(self, k: int) -> Optional[Any]:
        """The first ``k``-tagged value in the total order, if any yet."""
        return self._decisions.get(k)

    def wait_decided(self, k: int) -> Generator[Any, Any, Any]:
        """Cooperative-blocking wait for the decision of instance ``k``."""
        while k not in self._decisions:
            yield self._signal(k).wait()
        return self._decisions[k]

    # -- delivery upcalls ------------------------------------------------------------

    def on_deliver(self, message: AppMessage) -> None:
        payload = message.payload
        if not (isinstance(payload, tuple) and len(payload) == 3
                and payload[0] == _TAG):
            return
        _, k, value = payload
        if k not in self._decisions:  # first delivered proposal wins
            # Decisions are locked forever: consensus validity/agreement
            # (P5 analogue) forbids ever forgetting one, so the map grows
            # with the instance history by construction.
            self._decisions[k] = value  # repro: noqa(RES001) -- decided values must outlive every instance; the reduction has no checkpoint floor
            waiter = self._signals.pop(k, None)
            if waiter is not None:
                waiter.notify(value)

    def on_restore(self, state: Any) -> None:
        # A checkpoint-based restore replaces the delivery prefix; the
        # decisions contained in it must be recovered from the state by
        # the application that owns it.  For the equivalence construction
        # we keep it simple: it is used with the basic protocol, whose
        # replay always re-delivers from round 0.
        self._decisions = {}

    def _signal(self, k: int) -> Signal:
        signal = self._signals.get(k)
        if signal is None:
            assert self.node is not None
            signal = self.node.sim.signal(f"cfab:{k}@{self.node.node_id}")
            self._signals[k] = signal
        return signal
