"""Message identities.

The paper assumes all messages are distinct, "easily ensured by adding an
identity composed of a pair (local sequence number, sender identity)"
(Section 2.2).  In the crash-recovery model a *volatile* sequence counter
is not enough: a sender that crashes before its message reaches the
Agreed queue restarts counting and could mint the same (sender, seq) pair
for a different payload, breaking Integrity.  We therefore extend the
identity with a durable *incarnation* number, bumped once per
start/recovery — one log write per recovery, none per message, so the
paper's "no log operations beyond Consensus" accounting for the steady
state is preserved (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.storage.snapshot import register_immutable

__all__ = ["MessageId"]


class MessageId(NamedTuple):
    """Globally unique message identity; orderable.

    The natural tuple order ``(sender, incarnation, seq)`` doubles as the
    protocol's *predetermined deterministic rule* for ordering the
    messages of one consensus batch (Section 4.2).
    """

    sender: int
    incarnation: int
    seq: int

    def label(self) -> str:
        """Compact human-readable form, e.g. ``"2.1.15"``."""
        return f"{self.sender}.{self.incarnation}.{self.seq}"


# Ids are logged constantly (inside messages, batches, checkpoints);
# declaring them frozen keeps them on the storage snapshot fast path.
register_immutable(MessageId)
