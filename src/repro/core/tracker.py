"""Delivered-message tracker: the checkpoint "vector clock" made sound.

Section 5.2 associates a checkpoint vector clock with each application
checkpoint: "the sequence number of the last message delivered from each
process contained in the checkpoint".  A plain last-seq-per-sender vector
is only sound if deliveries are per-sender FIFO; with a lossy network a
sender's later message can be ordered *before* an earlier one (the
earlier one lingered in gossip).  The tracker therefore stores, per
sender stream ``(sender, incarnation)``:

* a contiguous *prefix* — the highest ``seq`` such that all sequence
  numbers ``1..seq`` are delivered (this is the paper's VC entry), and
* an *exception set* — delivered sequence numbers above the prefix.

When deliveries happen to be FIFO the exception sets stay empty and the
representation degenerates to exactly the paper's vector clock; otherwise
it remains a sound, compact membership test for "is m logically contained
in this checkpoint".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.core.ids import MessageId

__all__ = ["DeliveredTracker"]

_Stream = Tuple[int, int]  # (sender, incarnation)


class DeliveredTracker:
    """Compact membership set for delivered message ids."""

    __slots__ = ("_prefix", "_exceptions", "_count")

    def __init__(self) -> None:
        self._prefix: Dict[_Stream, int] = {}
        self._exceptions: Dict[_Stream, Set[int]] = {}
        self._count = 0

    # -- mutation ------------------------------------------------------------

    def add(self, mid: MessageId) -> bool:
        """Record ``mid`` as delivered; returns ``False`` if it already was."""
        if mid in self:
            return False
        stream = (mid.sender, mid.incarnation)
        prefix = self._prefix.get(stream, 0)
        exceptions = self._exceptions.setdefault(stream, set())
        if mid.seq == prefix + 1:
            prefix += 1
            while prefix + 1 in exceptions:  # absorb now-contiguous exceptions
                exceptions.discard(prefix + 1)
                prefix += 1
            self._prefix[stream] = prefix
        else:
            exceptions.add(mid.seq)
        if not exceptions:
            self._exceptions.pop(stream, None)
        self._count += 1
        return True

    def add_all(self, mids: Iterable[MessageId]) -> int:
        """Record many ids; returns how many were new."""
        return sum(1 for mid in mids if self.add(mid))

    # -- queries ----------------------------------------------------------------

    def __contains__(self, mid: MessageId) -> bool:
        stream = (mid.sender, mid.incarnation)
        if mid.seq <= self._prefix.get(stream, 0):
            return True
        return mid.seq in self._exceptions.get(stream, ())

    def __len__(self) -> int:
        return self._count

    def prefix_of(self, sender: int, incarnation: int) -> int:
        """The paper's VC entry: contiguous delivered prefix of a stream."""
        return self._prefix.get((sender, incarnation), 0)

    def exceptions_of(self, sender: int, incarnation: int) -> Set[int]:
        """Delivered seqs above the contiguous prefix (empty when FIFO)."""
        return set(self._exceptions.get((sender, incarnation), ()))

    def is_plain_vector(self) -> bool:
        """True when the tracker degenerates to the paper's vector clock."""
        return not self._exceptions

    # -- (de)serialisation ------------------------------------------------------

    def to_plain(self) -> List:
        """A codec-friendly representation (logged inside checkpoints)."""
        prefixes = [[list(stream), prefix]
                    for stream, prefix in sorted(self._prefix.items())]
        exceptions = [[list(stream), sorted(seqs)]
                      for stream, seqs in sorted(self._exceptions.items())]
        return [prefixes, exceptions, self._count]

    @classmethod
    def from_plain(cls, plain: List) -> "DeliveredTracker":
        """Inverse of :meth:`to_plain`."""
        tracker = cls()
        prefixes, exceptions, count = plain
        tracker._prefix = {tuple(stream): prefix
                           for stream, prefix in prefixes}
        tracker._exceptions = {tuple(stream): set(seqs)
                               for stream, seqs in exceptions if seqs}
        tracker._count = count
        return tracker

    def copy(self) -> "DeliveredTracker":
        """An independent deep copy."""
        clone = DeliveredTracker()
        clone._prefix = dict(self._prefix)
        clone._exceptions = {k: set(v) for k, v in self._exceptions.items()}
        clone._count = self._count
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DeliveredTracker({self._count} delivered, "
                f"{len(self._exceptions)} streams with exceptions)")
