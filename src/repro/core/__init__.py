"""The paper's contribution: Atomic Broadcast for crash-recovery systems.

* :class:`~repro.core.basic.BasicAtomicBroadcast` — Figure 2, the
  minimal-logging protocol.
* :class:`~repro.core.alternative.AlternativeAtomicBroadcast` /
  :class:`~repro.core.alternative.AlternativeConfig` — Figures 3–4, the
  Section 5 protocol (checkpoints, state transfer, batching, incremental
  logging).
* :class:`~repro.core.agreed.AgreedQueue`,
  :class:`~repro.core.tracker.DeliveredTracker` — the Agreed queue and
  the checkpoint membership tracker.
* :class:`~repro.core.messages.AppMessage`,
  :class:`~repro.core.ids.MessageId` — the message model.
"""

from repro.core.agreed import (AgreedQueue, deterministic_order,
                               sender_round_robin_order)
from repro.core.alternative import (AlternativeAtomicBroadcast,
                                    AlternativeConfig)
from repro.core.basic import BasicAtomicBroadcast, DeliveryListener
from repro.core.equivalence import ConsensusFromAtomicBroadcast
from repro.core.ids import MessageId
from repro.core.messages import AppMessage, GossipMessage, StateMessage
from repro.core.tracker import DeliveredTracker

__all__ = [
    "AgreedQueue",
    "AlternativeAtomicBroadcast",
    "AlternativeConfig",
    "AppMessage",
    "BasicAtomicBroadcast",
    "ConsensusFromAtomicBroadcast",
    "DeliveredTracker",
    "DeliveryListener",
    "GossipMessage",
    "MessageId",
    "StateMessage",
    "deterministic_order",
    "sender_round_robin_order",
]
