"""Nemeses: composable planners of adversity.

A nemesis turns a seeded RNG into a list of
:class:`~repro.chaos.events.ChaosEvent` — it *plans* faults, it never
touches a cluster (the controller applies events).  Keeping planning
pure means a scenario's full fault timeline exists up front, can be
printed for reproduction, and composes: the engine concatenates the
plans of every enabled nemesis and sorts by time.

Each nemesis draws from the single scenario RNG it is handed, in a fixed
order, so the composed timeline is a pure function of the seed.

Planned faults respect the paper's fairness assumptions by
construction: every partition heals, every loss burst ends, crashed
nodes are eventually recovered (by plan or by the controller's finish
phase), so the *model* stays one under which the protocols are supposed
to be live — what chaos tests is whether the implementation actually is.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.chaos.events import ChaosEvent

__all__ = ["ClockJumpNemesis", "CrashStormNemesis", "DiskFaultNemesis",
           "LimpingNodeNemesis", "LossBurstNemesis",
           "MembershipChurnNemesis", "Nemesis", "PartitionNemesis",
           "SaturationNemesis", "SlowDiskNemesis", "default_nemeses",
           "overload_nemeses"]


class Nemesis:
    """Base planner.  ``runtimes`` limits where a nemesis makes sense."""

    name = "nemesis"
    runtimes: Tuple[str, ...] = ("sim", "live")

    def plan(self, rng: random.Random, node_ids: Sequence[int],
             horizon: float) -> List[ChaosEvent]:
        """Produce this nemesis's events for one scenario."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


class CrashStormNemesis(Nemesis):
    """Crash/recover waves: up to ``max_victims`` nodes per wave.

    Victims of one wave crash at staggered instants and recover after
    individual downtimes — covering single failures, rolling restarts
    and simultaneous majority loss.
    """

    name = "crash"

    def __init__(self, waves: Tuple[int, int] = (1, 3),
                 downtime: Tuple[float, float] = (0.5, 3.0),
                 max_victims: int = 2):
        self.waves = waves
        self.downtime = downtime
        self.max_victims = max_victims

    def plan(self, rng: random.Random, node_ids: Sequence[int],
             horizon: float) -> List[ChaosEvent]:
        events: List[ChaosEvent] = []
        for _ in range(rng.randint(*self.waves)):
            start = rng.uniform(0.1 * horizon, 0.7 * horizon)
            victims = rng.sample(list(node_ids),
                                 rng.randint(1, min(self.max_victims,
                                                    len(node_ids))))
            for victim in victims:
                at = start + rng.uniform(0.0, 0.2)
                down = rng.uniform(*self.downtime)
                events.append(ChaosEvent(at, "crash", node=victim))
                events.append(ChaosEvent(at + down, "recover", node=victim))
        return events


class PartitionNemesis(Nemesis):
    """Isolate a minority for a window, then heal (sim link matrix only)."""

    name = "partition"
    runtimes = ("sim",)

    def __init__(self, windows: Tuple[int, int] = (1, 2),
                 duration: Tuple[float, float] = (0.5, 2.5)):
        self.windows = windows
        self.duration = duration

    def plan(self, rng: random.Random, node_ids: Sequence[int],
             horizon: float) -> List[ChaosEvent]:
        events: List[ChaosEvent] = []
        minority = max(1, (len(node_ids) - 1) // 2)
        for _ in range(rng.randint(*self.windows)):
            start = rng.uniform(0.1 * horizon, 0.6 * horizon)
            isolated = tuple(sorted(rng.sample(list(node_ids),
                                               rng.randint(1, minority))))
            events.append(ChaosEvent(start, "partition", isolated=isolated))
            events.append(ChaosEvent(
                start + rng.uniform(*self.duration), "heal_all"))
        return events


class LossBurstNemesis(Nemesis):
    """Raise the channel loss rate sharply for a bounded window."""

    name = "loss"

    def __init__(self, bursts: Tuple[int, int] = (1, 2),
                 rate: Tuple[float, float] = (0.2, 0.5),
                 duration: Tuple[float, float] = (0.5, 2.0)):
        self.bursts = bursts
        self.rate = rate
        self.duration = duration

    def plan(self, rng: random.Random, node_ids: Sequence[int],
             horizon: float) -> List[ChaosEvent]:
        events: List[ChaosEvent] = []
        for _ in range(rng.randint(*self.bursts)):
            start = rng.uniform(0.05 * horizon, 0.7 * horizon)
            events.append(ChaosEvent(
                start, "loss", rate=round(rng.uniform(*self.rate), 3)))
            events.append(ChaosEvent(
                start + rng.uniform(*self.duration), "loss_restore"))
        return events


class DiskFaultNemesis(Nemesis):
    """Arm torn/failed writes that crash their victim mid-``log``.

    The actual crash happens when the victim next writes (the armed
    :class:`~repro.storage.faulty.FaultyStorage` raises out of the
    ``log`` call); the controller catches the injected fault, crashes
    the node and schedules its recovery after ``downtime`` — modelling a
    power cut at the worst instant of the write path.  Sim only: on the
    live runtime the exception would be swallowed by the event loop's
    error trap instead of unwinding the victim deterministically.
    """

    name = "disk"
    runtimes = ("sim",)

    def __init__(self, faults: Tuple[int, int] = (1, 2),
                 downtime: Tuple[float, float] = (0.5, 2.0),
                 torn_probability: float = 0.6):
        self.faults = faults
        self.downtime = downtime
        self.torn_probability = torn_probability

    def plan(self, rng: random.Random, node_ids: Sequence[int],
             horizon: float) -> List[ChaosEvent]:
        events: List[ChaosEvent] = []
        for _ in range(rng.randint(*self.faults)):
            at = rng.uniform(0.1 * horizon, 0.7 * horizon)
            victim = rng.choice(list(node_ids))
            mode = "torn" if rng.random() < self.torn_probability else "fail"
            events.append(ChaosEvent(
                at, "torn_write", node=victim, mode=mode,
                downtime=round(rng.uniform(*self.downtime), 3)))
        return events


class ClockJumpNemesis(Nemesis):
    """Jump the live runtime's clock forward (NTP step / VM pause skew).

    Timers already armed keep their real delays; everything that *reads*
    the clock — failure-detector timeouts, adaptive estimates — sees the
    jump.  Live only: the simulator's virtual clock *is* the event
    order, so jumping it would change the scenario rather than stress
    the implementation.
    """

    name = "clock"
    runtimes = ("live",)

    def __init__(self, jumps: Tuple[int, int] = (1, 2),
                 delta: Tuple[float, float] = (0.5, 2.0)):
        self.jumps = jumps
        self.delta = delta

    def plan(self, rng: random.Random, node_ids: Sequence[int],
             horizon: float) -> List[ChaosEvent]:
        events: List[ChaosEvent] = []
        for _ in range(rng.randint(*self.jumps)):
            events.append(ChaosEvent(
                rng.uniform(0.1 * horizon, 0.8 * horizon), "clock_jump",
                delta=round(rng.uniform(*self.delta), 3)))
        return events


class MembershipChurnNemesis(Nemesis):
    """Elastic reconfiguration under fire: ordered joins, leaves, evictions.

    Joins bring brand-new node ids (``max(node_ids)+1`` onward) into the
    view by state transfer; removals shrink the view through ordered
    ``leave``/``evict`` commands but never plan away more than
    ``len(node_ids) - min_survivors`` of the original members (the
    controller additionally refuses to shrink a view below two).  Joins
    are planned early and removals late so a joiner usually has a
    running view to transfer from before the cluster contracts around
    it.

    **Opt-in by design** — never part of :func:`default_nemeses`:
    inserting it into the battery would shift every nemesis-selection
    and planning draw, silently changing the fault timeline of every
    existing seed.  Enable it via ``ChaosConfig(churn=True)`` or by
    passing an explicit ``nemeses`` list.
    """

    name = "churn"
    runtimes = ("sim",)

    def __init__(self, joins: Tuple[int, int] = (1, 2),
                 removals: Tuple[int, int] = (1, 2),
                 evict_probability: float = 0.5,
                 min_survivors: int = 2):
        self.joins = joins
        self.removals = removals
        self.evict_probability = evict_probability
        self.min_survivors = min_survivors

    def plan(self, rng: random.Random, node_ids: Sequence[int],
             horizon: float) -> List[ChaosEvent]:
        events: List[ChaosEvent] = []
        base = max(node_ids) + 1
        for index in range(rng.randint(*self.joins)):
            events.append(ChaosEvent(
                rng.uniform(0.15 * horizon, 0.45 * horizon), "join",
                node=base + index))
        removable = max(0, len(node_ids) - self.min_survivors)
        count = min(rng.randint(*self.removals), removable)
        victims = rng.sample(list(node_ids), count) if count else []
        for victim in victims:
            kind = "evict" if rng.random() < self.evict_probability \
                else "leave"
            events.append(ChaosEvent(
                rng.uniform(0.4 * horizon, 0.7 * horizon), kind,
                node=victim))
        return events


class SaturationNemesis(Nemesis):
    """Open-loop offered load beyond capacity (gray failure: overload).

    Plans dense bursts of ``submit`` events — the client does *not* wait
    for deliveries, so with admission control enabled the excess is
    rejected and counted, and without it the volatile buffers absorb the
    spike.  Payloads are tagged ``sat-`` so overload traffic is
    distinguishable from the scenario's steady workload.

    **Opt-in by design** (like membership churn): never part of
    :func:`default_nemeses`, because inserting it would shift every
    planning draw of every existing chaos seed.  Enable it via
    ``ChaosConfig(overload=True)`` or an explicit ``nemeses`` list.
    """

    name = "saturation"

    def __init__(self, bursts: Tuple[int, int] = (1, 2),
                 size: Tuple[int, int] = (30, 80),
                 spread: Tuple[float, float] = (0.2, 0.8)):
        self.bursts = bursts
        self.size = size
        self.spread = spread

    def plan(self, rng: random.Random, node_ids: Sequence[int],
             horizon: float) -> List[ChaosEvent]:
        events: List[ChaosEvent] = []
        serial = 0
        for _ in range(rng.randint(*self.bursts)):
            start = rng.uniform(0.1 * horizon, 0.6 * horizon)
            spread = rng.uniform(*self.spread)
            target = rng.choice(list(node_ids))
            for _ in range(rng.randint(*self.size)):
                events.append(ChaosEvent(
                    start + rng.uniform(0.0, spread), "submit",
                    node=target, payload=f"sat-{target}-{serial}"))
                serial += 1
        return events


class SlowDiskNemesis(Nemesis):
    """A limping disk: seeded per-write latency on one victim's storage.

    Applying ``slow_disk`` calls ``FaultyStorage.set_latency``; every
    subsequent ``log`` succeeds but stalls the victim's whole process
    for the drawn duration (``Node.stall`` defers its inbound messages),
    modelling a single-threaded server blocked in fsync.  The disk heals
    at ``slow_disk_restore``.  Sim only, like the other disk faults.

    **Opt-in by design** — see :class:`SaturationNemesis`.
    """

    name = "slow_disk"
    runtimes = ("sim",)

    def __init__(self, episodes: Tuple[int, int] = (1, 2),
                 latency: Tuple[float, float] = (0.05, 0.4),
                 duration: Tuple[float, float] = (1.0, 3.0)):
        self.episodes = episodes
        self.latency = latency
        self.duration = duration

    def plan(self, rng: random.Random, node_ids: Sequence[int],
             horizon: float) -> List[ChaosEvent]:
        events: List[ChaosEvent] = []
        for _ in range(rng.randint(*self.episodes)):
            start = rng.uniform(0.1 * horizon, 0.6 * horizon)
            victim = rng.choice(list(node_ids))
            low = round(rng.uniform(*self.latency), 3)
            high = round(low + rng.uniform(0.0, self.latency[1]), 3)
            events.append(ChaosEvent(start, "slow_disk", node=victim,
                                     low=low, high=high))
            events.append(ChaosEvent(
                start + rng.uniform(*self.duration), "slow_disk_restore",
                node=victim))
        return events


class LimpingNodeNemesis(Nemesis):
    """A slow-but-alive peer: constant extra delay on its every message.

    The victim keeps participating — late.  Its delayed heartbeats
    stress the failure detector's adaptive timeouts (suspect, refute,
    widen) and its delayed acks back up senders' stubborn windows.
    Heals at ``limp_restore``.  Sim only: the delay is injected in the
    simulated network's delay draw.

    **Opt-in by design** — see :class:`SaturationNemesis`.
    """

    name = "limp"
    runtimes = ("sim",)

    def __init__(self, episodes: Tuple[int, int] = (1, 2),
                 extra: Tuple[float, float] = (0.5, 2.5),
                 duration: Tuple[float, float] = (1.0, 3.0)):
        self.episodes = episodes
        self.extra = extra
        self.duration = duration

    def plan(self, rng: random.Random, node_ids: Sequence[int],
             horizon: float) -> List[ChaosEvent]:
        events: List[ChaosEvent] = []
        for _ in range(rng.randint(*self.episodes)):
            start = rng.uniform(0.1 * horizon, 0.6 * horizon)
            victim = rng.choice(list(node_ids))
            events.append(ChaosEvent(
                start, "limp", node=victim,
                extra=round(rng.uniform(*self.extra), 3)))
            events.append(ChaosEvent(
                start + rng.uniform(*self.duration), "limp_restore",
                node=victim))
        return events


def default_nemeses(runtime: str) -> List[Nemesis]:
    """The standard battery applicable to one runtime.

    :class:`MembershipChurnNemesis` is deliberately absent — membership
    churn is opt-in so the seed-to-timeline mapping of every existing
    chaos scenario stays stable.
    """
    battery: List[Nemesis] = [CrashStormNemesis(), PartitionNemesis(),
                              LossBurstNemesis(), DiskFaultNemesis(),
                              ClockJumpNemesis()]
    return [nemesis for nemesis in battery if runtime in nemesis.runtimes]


def overload_nemeses(runtime: str) -> List[Nemesis]:
    """The opt-in gray-failure battery (overload + slow disk + limp).

    Appended *after* the default battery when enabled
    (``ChaosConfig(overload=True)``), so the default scenario family's
    draw order — and therefore every legacy seed's timeline — is only
    extended, never reshuffled.
    """
    battery: List[Nemesis] = [SaturationNemesis(), SlowDiskNemesis(),
                              LimpingNodeNemesis()]
    return [nemesis for nemesis in battery if runtime in nemesis.runtimes]
