"""Low-level fault wiring shared by chaos and the legacy schedules.

This module owns the mechanics of *doing* a fault — crashing and
recovering nodes on a schedule, cutting a set of nodes off the link
matrix, arming seeded random crash/recovery processes — so that the
chaos controllers and the legacy :mod:`repro.sim.faults` schedules are
two faces over one implementation instead of two copies of it.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Tuple

from repro.runtime import Node, Simulator

if TYPE_CHECKING:  # transport sits above sim: type-only import, no cycle
    from repro.transport.network import Network

__all__ = ["FaultEvent", "RandomCrashRecover", "cut_off", "rejoin",
           "install_timeline"]


class FaultEvent:
    """One entry of an explicit crash/recover timeline."""

    __slots__ = ("time", "node_id", "action")

    CRASH = "crash"
    RECOVER = "recover"

    def __init__(self, time: float, node_id: int, action: str):
        if action not in (self.CRASH, self.RECOVER):
            raise ValueError(f"unknown fault action {action!r}")
        self.time = time
        self.node_id = node_id
        self.action = action

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultEvent({self.time}, {self.node_id}, {self.action!r})"


def install_timeline(sim: Simulator, nodes: Dict[int, Node],
                     events: Iterable[FaultEvent]) -> None:
    """Schedule an explicit crash/recover timeline on the simulator."""
    for event in events:
        node = nodes[event.node_id]
        if event.action == FaultEvent.CRASH:
            sim.schedule(event.time, node.crash)
        else:
            sim.schedule(event.time, node.recover)


def cut_off(network: "Network", isolated: Tuple[int, ...]) -> None:
    """Partition ``isolated`` away from every other node (both ways)."""
    others = [n for n in network.node_ids() if n not in isolated]
    for a in isolated:
        for b in others:
            network.partition(a, b)


def rejoin(network: "Network", isolated: Tuple[int, ...]) -> None:
    """Undo :func:`cut_off` for the same isolated set."""
    others = [n for n in network.node_ids() if n not in isolated]
    for a in isolated:
        for b in others:
            network.heal(a, b)


class RandomCrashRecover:
    """Seeded random crash-recovery process over a set of nodes.

    Arms an exponential crash timer per node; each crash arms an
    exponential recovery timer, and each recovery re-arms the crash
    timer.  After ``stabilize_at`` no further crashes are injected on
    *good* nodes (the paper's good processes "eventually remain
    permanently up", Section 3.3); ``bad_nodes`` keep oscillating forever
    or die permanently, per ``bad_mode``.

    The draw order is part of the determinism contract: one
    ``expovariate`` per armed crash and one per scheduled recovery, in
    arming order — replays are bit-for-bit.
    """

    def __init__(self, mttf: float, mttr: float, stabilize_at: float,
                 seed: int = 0,
                 bad_nodes: Sequence[int] = (),
                 bad_mode: str = "oscillate",
                 max_faults_per_node: Optional[int] = None):
        if bad_mode not in ("oscillate", "die"):
            raise ValueError(f"unknown bad_mode {bad_mode!r}")
        self.mttf = mttf
        self.mttr = mttr
        self.stabilize_at = stabilize_at
        # Seed boundary: the injector owns a private stream derived from
        # an explicit seed, so fault timelines replay bit-for-bit.
        self.rng = random.Random(seed)  # repro: noqa(DET004) -- private stream from an explicit seed
        self.bad_nodes = frozenset(bad_nodes)
        self.bad_mode = bad_mode
        self.max_faults_per_node = max_faults_per_node
        self._fault_counts: Dict[int, int] = {}

    def install(self, sim: Simulator, nodes: Dict[int, Node]) -> None:
        """Arm a crash timer for every node."""
        for node in nodes.values():
            self._arm_crash(sim, node)

    # -- internals ----------------------------------------------------------

    def _budget_left(self, node: Node) -> bool:
        if self.max_faults_per_node is None:
            return True
        return self._fault_counts.get(node.node_id, 0) \
            < self.max_faults_per_node

    def _arm_crash(self, sim: Simulator, node: Node) -> None:
        delay = self.rng.expovariate(1.0 / self.mttf)
        sim.schedule(delay, self._crash, sim, node)

    def _crash(self, sim: Simulator, node: Node) -> None:
        is_bad = node.node_id in self.bad_nodes
        if not is_bad and sim.now >= self.stabilize_at:
            return  # good nodes stop crashing after stabilisation
        if not self._budget_left(node):
            return
        if not node.up:
            return
        node.crash()
        self._fault_counts[node.node_id] = \
            self._fault_counts.get(node.node_id, 0) + 1
        if is_bad and self.bad_mode == "die":
            return  # permanently down
        delay = self.rng.expovariate(1.0 / self.mttr)
        sim.schedule(delay, self._recover, sim, node)

    def _recover(self, sim: Simulator, node: Node) -> None:
        if node.up:
            return
        node.recover()
        self._arm_crash(sim, node)
