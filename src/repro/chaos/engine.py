"""Seeded scenario exploration: derive, run, verify, reproduce.

One seed fully determines one scenario: cluster size, protocol, base
loss rate, stubborn-channel setting, which nemeses participate, their
fault timelines and the submission workload are all drawn from a stream
seeded by ``(master_seed, seed)``.  :func:`explore` sweeps N seeds and
reports every invariant violation; :func:`reproduce` re-runs one seed
with the exact fault timeline printed, which is the complete minimised
reproducer — nothing else went into the run.

Scenario derivation intentionally samples *configurations*, not just
fault timings: small and larger clusters, both paper protocols, raw and
stubborn channels — the cross product where ordering bugs historically
hide.
"""

from __future__ import annotations

import random
import tempfile
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.controller import LiveChaosController, SimChaosController
from repro.chaos.events import ChaosEvent, format_timeline
from repro.chaos.nemesis import MembershipChurnNemesis, Nemesis, \
    default_nemeses, overload_nemeses
from repro.errors import ReproError
from repro.flow.controller import FlowConfig
from repro.harness.cluster import Cluster, ClusterConfig
from repro.storage.faulty import FaultyStorage
from repro.storage.memory import MemoryStorage
from repro.transport.network import NetworkConfig

__all__ = ["ChaosConfig", "ChaosReport", "SeedResult", "explore",
           "reproduce", "run_seed"]


class ChaosConfig:
    """Knobs of an exploration sweep (everything else derives per seed)."""

    def __init__(self,
                 seeds: int = 25,
                 runtime: str = "sim",
                 master_seed: int = 0,
                 horizon: float = 8.0,
                 n_choices: Sequence[int] = (3, 4, 5),
                 protocols: Sequence[str] = ("basic", "alternative"),
                 base_loss_choices: Sequence[float] = (0.0, 0.05, 0.15),
                 stubborn_choices: Sequence[bool] = (False, True),
                 submissions: Tuple[int, int] = (6, 12),
                 settle_limit: float = 300.0,
                 nemeses: Optional[Sequence[Nemesis]] = None,
                 churn: bool = False,
                 overload: bool = False):
        if runtime not in ("sim", "live"):
            raise ReproError(f"unknown chaos runtime {runtime!r}")
        self.seeds = seeds
        self.runtime = runtime
        self.master_seed = master_seed
        self.horizon = horizon
        self.n_choices = tuple(n_choices)
        self.protocols = tuple(protocols)
        self.base_loss_choices = tuple(base_loss_choices)
        self.stubborn_choices = tuple(stubborn_choices)
        self.submissions = submissions
        self.settle_limit = settle_limit
        self.nemeses = list(nemeses) if nemeses is not None \
            else default_nemeses(runtime)
        # Membership churn is opt-in: appending the nemesis changes the
        # per-seed draw sequence, so ``churn=True`` defines a *different*
        # scenario family rather than perturbing the default one.
        self.churn = churn
        if churn:
            self.nemeses.extend(
                nemesis for nemesis in [MembershipChurnNemesis()]
                if runtime in nemesis.runtimes)
        # Overload/gray-failure battery is opt-in for the same reason as
        # churn: appending nemeses (and drawing flow parameters) defines
        # a different scenario family; legacy seeds stay bit-identical.
        self.overload = overload
        if overload:
            self.nemeses.extend(overload_nemeses(runtime))


class SeedResult:
    """Outcome of one chaos run."""

    def __init__(self, seed: int, ok: bool, params: Dict[str, Any],
                 timeline: List[ChaosEvent],
                 counters: Dict[str, int],
                 error: Optional[str] = None):
        self.seed = seed
        self.ok = ok
        self.params = params
        self.timeline = timeline
        self.counters = counters
        self.error = error

    def describe(self) -> str:
        """One summary line for sweep output."""
        status = "ok" if self.ok else "FAIL"
        knobs = ", ".join(f"{key}={value}" for key, value in
                          sorted(self.params.items()))
        extras = ", ".join(f"{key}={value}" for key, value in
                           sorted(self.counters.items()) if value)
        line = f"seed {self.seed:4d}  {status:4s}  [{knobs}]"
        if extras:
            line += f"  ({extras})"
        if self.error:
            line += f"\n    {self.error.splitlines()[-1]}"
        return line


class ChaosReport:
    """Aggregate of one exploration sweep."""

    def __init__(self, results: List[SeedResult]):
        self.results = results

    @property
    def failures(self) -> List[SeedResult]:
        return [result for result in self.results if not result.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def totals(self) -> Dict[str, int]:
        """Sum of every per-run counter across the sweep."""
        totals: Dict[str, int] = {}
        for result in self.results:
            for key, value in result.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals


def _derive_params(config: ChaosConfig, rng: random.Random) -> Dict[str, Any]:
    """Draw one scenario's configuration (fixed draw order: determinism)."""
    params: Dict[str, Any] = {
        "n": rng.choice(config.n_choices),
        "protocol": rng.choice(config.protocols),
        "base_loss": rng.choice(config.base_loss_choices),
        "stubborn": rng.choice(config.stubborn_choices),
        "cluster_seed": rng.randrange(2 ** 31),
    }
    if config.overload:
        # Flow parameters are drawn only in the overload family, after
        # the legacy draws, so the base family's derivations are
        # untouched seed for seed.
        params["flow_rate"] = rng.choice((4.0, 8.0, 16.0))
        params["flow_burst"] = rng.choice((4, 8))
        params["max_unordered"] = rng.choice((16, 32))
    return params


def _pick_nemeses(config: ChaosConfig, rng: random.Random) -> List[Nemesis]:
    """A non-empty random subset of the battery (fixed draw order)."""
    picked = [nemesis for nemesis in config.nemeses if rng.random() < 0.7]
    if not picked:
        picked = [rng.choice(config.nemeses)]
    return picked


def _plan_workload(config: ChaosConfig, rng: random.Random,
                   seed: int, n: int) -> List[ChaosEvent]:
    count = rng.randint(*config.submissions)
    events = []
    for index in range(count):
        events.append(ChaosEvent(
            rng.uniform(0.1, 0.8 * config.horizon), "submit",
            node=rng.randrange(n), payload=f"chaos-{seed}-{index}"))
    return events


def plan_scenario(config: ChaosConfig,
                  seed: int) -> Tuple[Dict[str, Any], List[Nemesis],
                                      List[ChaosEvent]]:
    """Everything one seed determines, before any cluster exists."""
    rng = random.Random(f"chaos:{config.master_seed}:{seed}")
    params = _derive_params(config, rng)
    nemeses = _pick_nemeses(config, rng)
    node_ids = list(range(params["n"]))
    events: List[ChaosEvent] = []
    for nemesis in nemeses:
        events.extend(nemesis.plan(rng, node_ids, config.horizon))
    events.extend(_plan_workload(config, rng, seed, params["n"]))
    events.sort(key=lambda event: event.time)
    params["nemeses"] = "+".join(nemesis.name for nemesis in nemeses)
    return params, nemeses, events


def _flow_config(params: Dict[str, Any]) -> Optional[FlowConfig]:
    """The scenario's admission control, when the overload family drew one."""
    if "flow_rate" not in params:
        return None
    return FlowConfig(rate=params["flow_rate"],
                      burst=params["flow_burst"],
                      max_unordered=params["max_unordered"])


def _build_sim(config: ChaosConfig, params: Dict[str, Any]) -> Tuple[
        Any, SimChaosController]:
    disk_seed_base = params["cluster_seed"]

    def faulty_factory(node_id: int) -> FaultyStorage:
        return FaultyStorage(
            MemoryStorage(),
            rng=random.Random(f"disk:{disk_seed_base}:{node_id}"),
            node_hint=node_id)

    cluster = Cluster(ClusterConfig(
        n=params["n"],
        seed=params["cluster_seed"],
        protocol=params["protocol"],
        network=NetworkConfig(loss_rate=params["base_loss"]),
        stubborn=params["stubborn"],
        storage_factory=faulty_factory,
        flow=_flow_config(params)))
    return cluster, SimChaosController(cluster, params["base_loss"])


def _build_live(config: ChaosConfig, params: Dict[str, Any],
                directory: str) -> Tuple[Any, LiveChaosController]:
    from repro.harness.live import LiveCluster
    cluster = LiveCluster(ClusterConfig(
        n=params["n"],
        seed=params["cluster_seed"],
        protocol=params["protocol"],
        network=NetworkConfig(loss_rate=params["base_loss"]),
        stubborn=params["stubborn"],
        flow=_flow_config(params)), directory)
    return cluster, LiveChaosController(cluster, params["base_loss"])


def _collect_counters(cluster: Any,
                      controller: Any) -> Dict[str, int]:
    counters = dict(controller.fault_counts)
    quarantined = sum(node.storage.metrics.quarantined
                      for node in cluster.nodes.values())
    if quarantined:
        counters["quarantined"] = quarantined
    injected: Dict[str, int] = {}
    for node in cluster.nodes.values():
        if isinstance(node.storage, FaultyStorage):
            for mode, count in node.storage.injected.items():
                if count:
                    injected[mode] = injected.get(mode, 0) + count
    counters.update(injected)
    stubborn = getattr(cluster, "stubborn", None)
    if stubborn is not None:
        counters["retransmissions"] = stubborn.metrics.retransmissions
        counters["acks"] = stubborn.metrics.acks_received
        # Overflows exist only once a backlog bound trips; adding the key
        # conditionally keeps legacy counter dicts byte-identical.
        if stubborn.metrics.backlog_overflows:
            counters["backlog_overflows"] = stubborn.metrics.backlog_overflows
    flows = getattr(cluster, "flows", None)
    if flows:
        counters["flow_accepted"] = sum(
            controller.accepted for controller in flows.values())
        counters["flow_rejected"] = sum(
            controller.rejected for controller in flows.values())
    counters["delivered"] = len(cluster.collector.first_delivery)
    return counters


def run_seed(config: ChaosConfig, seed: int,
             directory: Optional[str] = None) -> SeedResult:
    """Run one fully-derived scenario and verify the paper's properties."""
    params, _, events = plan_scenario(config, seed)
    if config.runtime == "sim":
        cluster, controller = _build_sim(config, params)
    else:
        if directory is None:
            directory = tempfile.mkdtemp(prefix=f"chaos-live-{seed}-")
        cluster, controller = _build_live(config, params, directory)
    try:
        cluster.start()
        controller.run_timeline(events, config.horizon)
        controller.finish(config.settle_limit)
        error = None
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    except Exception:
        error = traceback.format_exc()
    finally:
        counters = _collect_counters(cluster, controller)
        if config.runtime == "live":
            cluster.close()
    return SeedResult(seed, error is None, params, controller.applied,
                      counters, error)


def explore(config: ChaosConfig,
            emit=None) -> ChaosReport:
    """Sweep ``config.seeds`` scenarios; report every failing seed."""
    results = []
    for seed in range(config.seeds):
        result = run_seed(config, seed)
        results.append(result)
        if emit is not None:
            emit(result.describe())
    return ChaosReport(results)


def reproduce(config: ChaosConfig, seed: int, emit=print) -> SeedResult:
    """Re-run one seed and print the exact fault timeline applied."""
    params, _, planned = plan_scenario(config, seed)
    emit(f"seed {seed} scenario: " + ", ".join(
        f"{key}={value}" for key, value in sorted(params.items())))
    emit("planned timeline:")
    emit(format_timeline(planned))
    result = run_seed(config, seed)
    emit("applied timeline:")
    emit(format_timeline(result.timeline))
    emit(result.describe())
    if result.error:
        emit(result.error)
    return result
