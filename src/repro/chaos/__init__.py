"""Seeded chaos engine: manufacture failure scenarios, check the paper.

The crash-recovery model of the paper is defined by what it survives:
processes that crash and recover with amnesia, channels that lose and
duplicate, storage that is only as stable as its ``log`` discipline.
This package generates those adversities *systematically* — composable
:mod:`nemeses <repro.chaos.nemesis>` plan seeded fault timelines
(crash storms, partitions, loss bursts, disk faults, clock skew), a
:mod:`controller <repro.chaos.controller>` applies them to a running
cluster on either runtime, and the :mod:`engine <repro.chaos.engine>`
explores N seeds, verifying every run against the full
Validity/Integrity/Total-Order/Termination predicate set of
:func:`~repro.harness.verify.verify_run`.

Every run is a pure function of its seed: a failing seed re-runs with
its exact fault timeline printed (``repro chaos --reproduce SEED``).

Only the harness-independent pieces are imported here (the event
vocabulary, the nemesis planners and the low-level fault wiring that
:mod:`repro.sim.faults` delegates to).  The controller and engine sit
*above* the harness, and :mod:`repro.sim` sits below it while importing
this package — importing them here would close an import cycle, so use
the explicit forms::

    from repro.chaos.engine import ChaosConfig, explore, reproduce
    from repro.chaos.controller import SimChaosController
"""

from repro.chaos.events import ChaosEvent, format_timeline
from repro.chaos.inject import (FaultEvent, RandomCrashRecover, cut_off,
                                install_timeline, rejoin)
from repro.chaos.nemesis import (ClockJumpNemesis, CrashStormNemesis,
                                 DiskFaultNemesis, LossBurstNemesis,
                                 MembershipChurnNemesis, Nemesis,
                                 PartitionNemesis, default_nemeses)

__all__ = [
    "ChaosEvent",
    "ClockJumpNemesis",
    "CrashStormNemesis",
    "DiskFaultNemesis",
    "FaultEvent",
    "LossBurstNemesis",
    "MembershipChurnNemesis",
    "Nemesis",
    "PartitionNemesis",
    "RandomCrashRecover",
    "cut_off",
    "default_nemeses",
    "format_timeline",
    "install_timeline",
    "rejoin",
]
