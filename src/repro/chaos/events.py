"""The chaos timeline vocabulary.

A scenario is a list of :class:`ChaosEvent` records sorted by time; the
controller applies each one to the running cluster when the clock
reaches it.  Events are plain data — building a timeline performs no
side effects — so a scenario can be printed, compared and replayed
verbatim, which is what makes failing seeds reproducible.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["ChaosEvent", "format_timeline", "KINDS"]

# Every kind the controllers understand.  ``crash``/``recover`` act on
# one node; ``partition``/``heal_all`` on the link matrix; ``loss``
# mutates the channel loss rate (``loss_restore`` returns to the
# scenario's base rate); ``torn_write`` arms a one-shot disk fault that
# crashes its victim mid-log; ``clock_jump`` skews the live runtime's
# clock; ``submit`` A-broadcasts a payload (redirected to an up node if
# the chosen one is down); ``join``/``leave``/``evict`` reconfigure the
# membership through ordered commands (``join`` also builds and starts
# the new node's stack; ``evict`` additionally crashes a running
# victim — eviction models expelling a faulty process).  Gray failures:
# ``slow_disk`` gives a victim's FaultyStorage a per-write latency draw
# (``slow_disk_restore`` heals it); ``limp`` adds constant delay to
# every message touching a slow-but-alive victim (``limp_restore``
# heals it).
KINDS = ("crash", "recover", "partition", "heal_all", "loss",
         "loss_restore", "torn_write", "clock_jump", "submit",
         "join", "leave", "evict",
         "slow_disk", "slow_disk_restore", "limp", "limp_restore")


class ChaosEvent:
    """One planned (or dynamically injected) fault-timeline entry."""

    __slots__ = ("time", "kind", "node", "args")

    def __init__(self, time: float, kind: str, node: Optional[int] = None,
                 **args: Any):
        if kind not in KINDS:
            raise ValueError(f"unknown chaos event kind {kind!r}")
        self.time = time
        self.kind = kind
        self.node = node
        self.args: Dict[str, Any] = args

    def describe(self) -> str:
        """One canonical human-readable timeline line."""
        parts = [f"t={self.time:7.3f}", self.kind]
        if self.node is not None:
            parts.append(f"node={self.node}")
        for key in sorted(self.args):
            parts.append(f"{key}={self.args[key]!r}")
        return "  ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ChaosEvent {self.describe()}>"


def format_timeline(events: List[ChaosEvent]) -> str:
    """Render a timeline, one event per line, in application order."""
    return "\n".join(event.describe() for event in events)
