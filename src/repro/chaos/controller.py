"""Chaos controllers: apply a fault timeline to a running cluster.

A controller owns one built cluster and replays a sorted list of
:class:`~repro.chaos.events.ChaosEvent` against it: advance the clock to
the event's instant, apply it, repeat.  Both runtimes share the event
vocabulary; what differs is how the clock advances (virtual ``sim.run``
versus real ``run_for``) and which faults are expressible (the link
matrix and disk faults exist on the simulator, clock skew on the live
runtime).

Disk faults are the interesting case: applying a ``torn_write`` event
only *arms* the victim's :class:`~repro.storage.faulty.FaultyStorage`;
the fault fires later, inside whatever ``log`` call the victim makes
next, and surfaces as an :class:`~repro.storage.faulty.InjectedCrashFault`
unwinding out of ``sim.run`` (the kernel executes exactly one node's
callback at a time, so only the victim's step is torn).  The controller
catches it, crashes the victim — volatile state gone, the torn record on
"disk" — schedules the recovery, and resumes the clock.  This is a
faithful power-cut-mid-write, which is precisely the scenario the
paper's ``log``-before-``send`` discipline exists for.

After the timeline, :meth:`finish` restores a fair world (heal
partitions, base loss, disarm disk faults, recover everyone), settles,
and hands the cluster to :func:`~repro.harness.verify.verify_run`.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.events import ChaosEvent
from repro.chaos.inject import cut_off
from repro.errors import OverloadError, SimulationError
from repro.harness.verify import (VerificationReport,
                                  verify_overload_safety, verify_run)
from repro.storage.faulty import FaultyStorage, InjectedCrashFault

__all__ = ["LiveChaosController", "SimChaosController"]


class _BaseController:
    """Shared timeline-replay loop (clock advancement is per-runtime)."""

    def __init__(self, cluster: Any, base_loss: float):
        self.cluster = cluster
        self.base_loss = base_loss
        # Every event actually applied, including dynamic ones (disk-fault
        # crashes, submit redirections): the reproducible ground truth.
        self.applied: List[ChaosEvent] = []
        self.fault_counts: Dict[str, int] = {}
        # Overload accounting: every submission the timeline offered and
        # how many the cluster's admission control turned away.  The
        # overload-safety invariant `accepted + rejected == offered`
        # checks against these.
        self.submissions_offered = 0
        self.submissions_rejected = 0
        self._heap: List[Tuple[float, int, ChaosEvent]] = []
        self._serial = 0

    # -- timeline ------------------------------------------------------------

    def push(self, event: ChaosEvent) -> None:
        heapq.heappush(self._heap, (event.time, self._serial, event))
        self._serial += 1

    def run_timeline(self, events: List[ChaosEvent], horizon: float) -> None:
        """Advance-apply until the timeline (and the horizon) is spent."""
        for event in events:
            self.push(event)
        while self._heap:
            _, _, event = heapq.heappop(self._heap)
            self.advance(event.time)
            try:
                self.apply(event)
            except InjectedCrashFault as fault:
                # An armed disk fault fired inside a synchronous apply
                # (a recovery replay's first log, a submission's
                # write-ahead): same crash semantics as firing mid-run.
                self.on_injected_fault(fault)
        self.advance(horizon)

    def record(self, event: ChaosEvent, count_as: Optional[str] = None) -> None:
        self.applied.append(event)
        kind = count_as or event.kind
        if kind != "submit":
            self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1

    # -- event application ----------------------------------------------------

    def apply(self, event: ChaosEvent) -> None:
        handler = getattr(self, f"_apply_{event.kind}", None)
        if handler is None:
            raise SimulationError(
                f"{type(self).__name__} cannot apply {event.kind!r}")
        handler(event)

    def _apply_submit(self, event: ChaosEvent) -> None:
        target = event.node
        if target is None or not self.cluster.nodes[target].up:
            up = [nid for nid, node in self.cluster.nodes.items() if node.up]
            if not up:
                return  # whole cluster down: the submission never happens
            target = min(up)
        self.submissions_offered += 1
        try:
            self.cluster.submit(target, event.args["payload"])
        except OverloadError as busy:
            # The busy signal is part of the contract under saturation:
            # the rejection is counted, never silently lost.
            self.submissions_rejected += 1
            self.record(ChaosEvent(self.now, "submit", node=target,
                                   payload=event.args["payload"],
                                   rejected=busy.reason),
                        count_as="overload_reject")
            return
        self.record(ChaosEvent(self.now, "submit", node=target,
                               payload=event.args["payload"]))

    # Membership churn (shared: both harnesses expose the same
    # add_node/submit_reconfig/current_view surface; only the crash that
    # accompanies an eviction is runtime-specific and goes through the
    # controller's own ``_apply_crash``).

    def _member_up(self) -> bool:
        """Is any current-view member up to carry an ordered command?"""
        return any(nid in self.cluster.nodes and self.cluster.nodes[nid].up
                   for nid in self.cluster.current_view().members)

    def _apply_join(self, event: ChaosEvent) -> None:
        if event.node in self.cluster.nodes:
            return  # id already built (e.g. replanned join): nothing to do
        if not self._member_up():
            return  # nobody to order the join command right now
        try:
            self.cluster.add_node(event.node)
        except OverloadError:
            # Admission control turned the join command away (combined
            # overload + churn run): the reconfiguration simply does not
            # happen this time — same outcome as no member being up.
            return
        self.record(event)

    def _apply_leave(self, event: ChaosEvent) -> None:
        self._apply_removal(event, evict=False)

    def _apply_evict(self, event: ChaosEvent) -> None:
        self._apply_removal(event, evict=True)

    def _apply_removal(self, event: ChaosEvent, evict: bool) -> None:
        view = self.cluster.current_view()
        if event.node not in view.members:
            return  # already removed (or never joined): ordered no-op spared
        if len(view.members) <= 2:
            return  # keep the view able to form meaningful quorums
        if not self._member_up():
            return
        try:
            self.cluster.submit_reconfig("evict" if evict else "leave",
                                         event.node)
        except OverloadError:
            return  # rejected command: the removal does not happen
        self.record(event)
        if evict and event.node in self.cluster.nodes \
                and self.cluster.nodes[event.node].up:
            # Eviction expels a faulty process: crash it through the
            # runtime-specific handler (which records the crash too).
            self.apply(ChaosEvent(self.now, "crash", node=event.node))

    # -- runtime-specific hooks ------------------------------------------------

    @property
    def now(self) -> float:
        raise NotImplementedError

    def advance(self, until: float) -> None:
        raise NotImplementedError

    def on_injected_fault(self, fault: InjectedCrashFault) -> None:
        raise fault  # only the simulator injects disk faults

    def finish(self, settle_limit: float) -> VerificationReport:
        raise NotImplementedError


class SimChaosController(_BaseController):
    """Timeline replay against a simulated :class:`~repro.harness.cluster.Cluster`."""

    runtime_name = "sim"

    def __init__(self, cluster: Any, base_loss: float):
        super().__init__(cluster, base_loss)
        self._disk_downtimes: Dict[int, float] = {}

    @property
    def now(self) -> float:
        return self.cluster.sim.now

    def advance(self, until: float) -> None:
        sim = self.cluster.sim
        while sim.now < until:
            try:
                sim.run(until=until)
            except InjectedCrashFault as fault:
                self.on_injected_fault(fault)

    def on_injected_fault(self, fault: InjectedCrashFault) -> None:
        victim = fault.node_hint
        assert victim is not None
        node = self.cluster.nodes[victim]
        if node.up:
            node.crash()
        self.record(ChaosEvent(self.now, "crash", node=victim,
                               cause=fault.mode, key=fault.path),
                    count_as="disk_crash")
        downtime = self._disk_downtimes.pop(victim, 1.0)
        self.push(ChaosEvent(self.now + downtime, "recover", node=victim))

    # -- event handlers --------------------------------------------------------

    def _apply_crash(self, event: ChaosEvent) -> None:
        node = self.cluster.nodes[event.node]
        if node.up:
            node.crash()
            self.record(event)

    def _apply_recover(self, event: ChaosEvent) -> None:
        node = self.cluster.nodes[event.node]
        if not node.up:
            node.recover()
            self.record(event)

    def _apply_partition(self, event: ChaosEvent) -> None:
        cut_off(self.cluster.network, tuple(event.args["isolated"]))
        self.record(event)

    def _apply_heal_all(self, event: ChaosEvent) -> None:
        self.cluster.network.heal_all()
        self.record(event)

    def _apply_loss(self, event: ChaosEvent) -> None:
        self.cluster.network.config.loss_rate = event.args["rate"]
        self.record(event)

    def _apply_loss_restore(self, event: ChaosEvent) -> None:
        self.cluster.network.config.loss_rate = self.base_loss
        self.record(event)

    def _apply_torn_write(self, event: ChaosEvent) -> None:
        storage = self.cluster.nodes[event.node].storage
        if not isinstance(storage, FaultyStorage):
            return  # scenario built without fault-injection storage
        storage.arm_crash_write(event.args.get("mode", "torn"))
        self._disk_downtimes[event.node] = event.args.get("downtime", 1.0)
        self.record(event)

    # -- gray failures ---------------------------------------------------------

    def _apply_slow_disk(self, event: ChaosEvent) -> None:
        node = self.cluster.nodes[event.node]
        storage = node.storage
        if not isinstance(storage, FaultyStorage):
            return  # scenario built without fault-injection storage
        storage.set_latency(event.args["low"], event.args["high"])
        # Each drawn write stall freezes the victim's whole process:
        # slow-but-alive, exactly the gray-failure envelope.
        storage.on_stall = node.stall
        self.record(event)

    def _apply_slow_disk_restore(self, event: ChaosEvent) -> None:
        storage = self.cluster.nodes[event.node].storage
        if not isinstance(storage, FaultyStorage):
            return
        storage.clear_latency()
        self.record(event)

    def _apply_limp(self, event: ChaosEvent) -> None:
        self.cluster.network.set_node_delay(event.node, event.args["extra"])
        self.record(event)

    def _apply_limp_restore(self, event: ChaosEvent) -> None:
        self.cluster.network.clear_node_delay(event.node)
        self.record(event)

    # -- finish ---------------------------------------------------------------

    def finish(self, settle_limit: float) -> VerificationReport:
        """Restore a fair world, settle, verify."""
        for node in self.cluster.nodes.values():
            if isinstance(node.storage, FaultyStorage):
                node.storage.disarm()  # also heals a limping disk
        self.cluster.network.heal_all()
        self.cluster.network.clear_node_delays()
        self.cluster.network.config.loss_rate = self.base_loss
        self.advance(self.now + 0.5)  # drain armed faults' last writes
        for node in self.cluster.nodes.values():
            if not node.up:
                node.recover()
        settled = self.cluster.settle(limit=self.now + settle_limit)
        if not settled:
            raise SimulationError(
                f"cluster failed to settle within {settle_limit} after "
                f"the chaos timeline (termination suspect)")
        report = verify_run(self.cluster)
        if getattr(self.cluster, "flows", None):
            # Overload runs additionally assert the flow-control
            # contract: exact rejection accounting, bounded queues.
            verify_overload_safety(self.cluster, report)
        return report


class LiveChaosController(_BaseController):
    """Timeline replay against a :class:`~repro.harness.live.LiveCluster`.

    Runs in real time; crash/recover events kill the node's socket and
    storage handle and restart over the surviving files, loss events
    mutate the UDP injection rate, and clock jumps skew the runtime's
    epoch.  Partition and disk-fault events are simulator-only and are
    rejected here (the nemesis battery never plans them for ``live``).
    """

    runtime_name = "live"

    @property
    def now(self) -> float:
        return self.cluster.runtime.now

    def advance(self, until: float) -> None:
        remaining = until - self.now
        if remaining > 0:
            self.cluster.run_for(remaining)
        self.cluster.runtime.check_errors()

    # -- event handlers --------------------------------------------------------

    def _apply_crash(self, event: ChaosEvent) -> None:
        if self.cluster.nodes[event.node].up:
            self.cluster.kill(event.node)
            self.record(event)

    def _apply_recover(self, event: ChaosEvent) -> None:
        if not self.cluster.nodes[event.node].up:
            self.cluster.restart(event.node)
            self.record(event)

    def _apply_loss(self, event: ChaosEvent) -> None:
        self.cluster.network.loss_rate = event.args["rate"]
        self.record(event)

    def _apply_loss_restore(self, event: ChaosEvent) -> None:
        self.cluster.network.loss_rate = self.base_loss
        self.record(event)

    def _apply_clock_jump(self, event: ChaosEvent) -> None:
        self.cluster.runtime.jump_clock(event.args["delta"])
        self.record(event)

    # -- finish ---------------------------------------------------------------

    def finish(self, settle_limit: float) -> VerificationReport:
        self.cluster.network.loss_rate = self.base_loss
        for node_id, node in sorted(self.cluster.nodes.items()):
            if not node.up:
                self.cluster.restart(node_id)
        settled = self.cluster.settle(limit=settle_limit)
        self.cluster.runtime.check_errors()
        if not settled:
            raise SimulationError(
                f"live cluster failed to settle within {settle_limit}s "
                f"after the chaos timeline (termination suspect)")
        return verify_run(self.cluster)
