"""E1 — Protocol correctness under crash-recovery (Sections 2.2, 5.6).

Claim: both protocols satisfy Validity, Integrity, Termination and Total
Order in the crash-recovery model (properties P1–P7 underpin the proof).

Regenerated evidence: a matrix of seeded runs — per protocol, with
random crash/recovery injection — all of which pass the harness's
post-hoc property verification.  The table reports what each run
survived (crashes, recoveries, rounds) and that it verified.
"""

from __future__ import annotations

from common import emit_table, run_verified

from repro.core.alternative import AlternativeConfig
from repro.harness.cluster import ClusterConfig
from repro.harness.scenario import Scenario
from repro.sim.faults import RandomFaults
from repro.transport.network import NetworkConfig
from repro.workloads.generators import PoissonWorkload

SEEDS = (1, 2, 3)
PROTOCOLS = ("basic", "alternative")


def run_case(protocol: str, seed: int):
    return run_verified(Scenario(
        cluster=ClusterConfig(
            n=3, seed=seed, protocol=protocol,
            network=NetworkConfig(loss_rate=0.05, duplicate_rate=0.02),
            alt=AlternativeConfig(checkpoint_interval=2.0, delta=3)),
        workload=PoissonWorkload(1.5, 12.0, seed=seed),
        faults=RandomFaults(mttf=8.0, mttr=2.0, stabilize_at=15.0,
                            seed=seed),
        duration=25.0, settle_limit=200.0))


def test_e1_correctness_matrix(benchmark):
    rows = []

    def full_matrix():
        rows.clear()
        for protocol in PROTOCOLS:
            for seed in SEEDS:
                result = run_case(protocol, seed)
                stats = result.metrics.node_stats
                rows.append([
                    protocol, seed,
                    result.metrics.messages_broadcast,
                    result.metrics.messages_delivered,
                    result.report.rounds,
                    sum(stats[i]["crashes"] for i in stats),
                    sum(stats[i]["recoveries"] for i in stats),
                    "yes",
                ])
        return rows

    benchmark.pedantic(full_matrix, rounds=1, iterations=1)
    emit_table(
        "E1  Atomic Broadcast properties under crash-recovery",
        ["protocol", "seed", "bcast", "delivered", "rounds",
         "crashes", "recoveries", "verified"],
        rows,
        note="verified = Validity + Integrity + Termination + Total Order "
             "checked post-hoc on the full run")
    assert all(row[-1] == "yes" for row in rows)
