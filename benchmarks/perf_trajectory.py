#!/usr/bin/env python
"""Perf-trajectory harness driver (docs/PERFORMANCE.md).

Runs the frozen scenario matrix of :mod:`repro.perf.matrix` and records
one ``BENCH_<label>.json`` trajectory point at the repo root.

    # full matrix, run twice (determinism metrics must be bit-identical),
    # plus the storage before/after comparison; writes BENCH_PR5.json
    PYTHONPATH=src python benchmarks/perf_trajectory.py --label PR5

    # CI drift gate: smallest cell only, checked against the committed
    # baseline; exits 1 on any determinism-metric drift
    PYTHONPATH=src python benchmarks/perf_trajectory.py \\
        --smoke --check BENCH_PR5.json --output perf-smoke.json

    # print one cell's evolution across every committed BENCH_*.json
    PYTHONPATH=src python benchmarks/perf_trajectory.py \\
        --trajectory basic-n3-l00-quiet
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.harness import (compare_determinism,
                                measure_codec_comparison,
                                measure_group_commit_comparison,
                                measure_storage_comparison,
                                measure_wire_comparison, run_matrix)
from repro.perf.matrix import (default_matrix, overload_cell, scaled_cells,
                               smallest_cell)
from repro.perf.trajectory import (baseline_determinism, build_document,
                                   format_comparison_table,
                                   format_matrix_table,
                                   format_trajectory_table,
                                   format_wire_comparison_table,
                                   load_documents, summarize_drift,
                                   write_document)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="perf-trajectory harness (see docs/PERFORMANCE.md)")
    parser.add_argument("--label", default=None,
                        help="trajectory point label; writes "
                             "BENCH_<label>.json unless --output is given")
    parser.add_argument("--output", default=None,
                        help="explicit output path for the BENCH document")
    parser.add_argument("--smoke", action="store_true",
                        help="run only the smallest matrix cell")
    parser.add_argument("--cells", nargs="*", default=None,
                        help="run only the named cells")
    parser.add_argument("--repeat", type=int, default=2,
                        help="matrix repetitions for the determinism "
                             "self-check (default 2)")
    parser.add_argument("--check", default=None,
                        help="BENCH file to diff determinism metrics "
                             "against; exit 1 on drift")
    parser.add_argument("--no-compare", action="store_true",
                        help="skip the storage before/after comparison")
    parser.add_argument("--overload", action="store_true",
                        help="append the admission-control cell to the "
                             "run (its flow_* metrics exist only there; "
                             "the 16 legacy cells are unaffected)")
    parser.add_argument("--scaled", action="store_true",
                        help="append the scale-stress cells (25 nodes, "
                             "10x rate) to the run")
    parser.add_argument("--wire-compare", action="store_true",
                        help="run and record the binary-wire-path "
                             "before/after comparisons (live burst over "
                             "localhost UDP, codec pipeline, storage "
                             "group commit)")
    parser.add_argument("--trajectory", default=None, metavar="CELL",
                        help="print CELL's metrics across all committed "
                             "BENCH_*.json files and exit")
    args = parser.parse_args(argv)

    if args.trajectory is not None:
        print(format_trajectory_table(load_documents(), args.trajectory))
        return 0

    if args.smoke:
        cells = [smallest_cell()]
    else:
        cells = default_matrix()
        if args.cells:
            # --cells selects from the whole cell universe, so the CI
            # drift gate can name the overload and scale-stress cells
            # without pulling in the full matrix.
            known = default_matrix() + [overload_cell()] + scaled_cells()
            wanted = set(args.cells)
            cells = [cell for cell in known if cell.name in wanted]
            missing = wanted - {cell.name for cell in cells}
            if missing:
                parser.error(f"unknown cells: {sorted(missing)} "
                             f"(known: {[c.name for c in known]})")
    if args.overload:
        cells = cells + [overload_cell()]
    if args.scaled:
        cells = cells + [cell for cell in scaled_cells()
                         if cell.name not in {c.name for c in cells}]

    print(f"running {len(cells)} cell(s), {args.repeat} repetition(s)...")
    results = run_matrix(cells)
    for repetition in range(1, args.repeat):
        rerun = run_matrix(cells)
        drifts = compare_determinism(
            {r.cell.name: r.determinism for r in results}, rerun)
        if drifts:
            print(f"run {repetition + 1} disagrees with run 1 on "
                  f"determinism metrics:")
            for drift in drifts:
                print(f"  - {drift}")
            return 1
    if args.repeat > 1:
        print(f"determinism self-check: {args.repeat} consecutive runs "
              f"bit-identical")
    print(format_matrix_table(results))

    comparison = None
    if not args.no_compare and not args.smoke:
        comparison = measure_storage_comparison()
        print(format_comparison_table(comparison))

    wire_comparisons = None
    if args.wire_compare:
        print("measuring binary wire path (live burst, codec, "
              "group commit)...")
        wire_comparisons = {
            "live": measure_wire_comparison(count=1500),
            "codec": measure_codec_comparison(),
            "group_commit": measure_group_commit_comparison(),
        }
        print(format_wire_comparison_table(wire_comparisons))

    exit_code = 0
    if args.check is not None:
        import json
        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        ok, verdict = summarize_drift(compare_determinism(
            baseline_determinism(baseline), results))
        print(verdict)
        if not ok:
            exit_code = 1

    output = args.output
    if output is None and args.label is not None:
        output = f"BENCH_{args.label}.json"
    if output is not None:
        label = args.label or "unlabelled"
        write_document(build_document(label, results, comparison,
                                      wire_comparisons), output)
        print(f"wrote {output}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
