"""E7 — Incremental logging reduces logged bytes (Section 5.5).

Claim: "when logging a queue or a set (such as the Unordered set) only
its new part (with respect to the previous logging) has to be logged."

Regenerated evidence: the logged-Unordered variant (Section 5.4) run
with incremental logging on and off, over growing message counts.  The
full-set variant re-writes the whole Unordered set on every admission
(quadratic bytes in the worst case); the incremental variant writes each
message once (linear).  The ratio therefore grows with load.
"""

from __future__ import annotations

from common import emit_table, run_verified

from repro.core.alternative import AlternativeConfig
from repro.harness.cluster import ClusterConfig
from repro.harness.scenario import Scenario
from repro.transport.network import NetworkConfig
from repro.workloads.generators import BurstyWorkload

BURST_SIZES = (5, 10, 20)


def ab_bytes(incremental, burst_size, seed=13):
    result = run_verified(Scenario(
        cluster=ClusterConfig(
            n=3, seed=seed, protocol="alternative",
            network=NetworkConfig(loss_rate=0.02),
            alt=AlternativeConfig(checkpoint_interval=None, delta=3,
                                  log_unordered=True,
                                  incremental=incremental)),
        # Bursts make the Unordered set fat when each log happens — the
        # regime where re-logging the whole set hurts most.
        workload=BurstyWorkload(burst_size=burst_size,
                                burst_spacing=2.0, bursts=8, seed=seed),
        duration=24.0, settle_limit=400.0))
    return result.metrics.bytes_by_prefix().get("ab", 0), \
        result.metrics.messages_delivered


def test_e7_incremental_logging_bytes(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for burst_size in BURST_SIZES:
            full_bytes, delivered = ab_bytes(False, burst_size)
            incr_bytes, _ = ab_bytes(True, burst_size)
            rows.append([delivered, full_bytes, incr_bytes,
                         full_bytes / max(incr_bytes, 1)])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "E7  Unordered-set log traffic: full re-log vs incremental",
        ["messages", "bytes (full set)", "bytes (incremental)",
         "ratio"],
        rows,
        note="claim: logging only the new part saves a growing factor "
             "as the set gets larger")
    ratios = [row[3] for row in rows]
    assert all(ratio > 1.5 for ratio in ratios)
    assert ratios[-1] > ratios[0]  # fatter sets => bigger saving
