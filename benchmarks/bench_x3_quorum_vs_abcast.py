"""X3 (extension) — Quorum replication vs Atomic Broadcast (Section 6.3).

The paper's companion report bridges quorum-based (weighted-voting)
replica management and Atomic Broadcast.  This experiment quantifies the
trade the bridge is about, on identical clusters and networks:

* a **quorum register** (ABD-style, crash-recovery durable) costs two
  majority round-trips per operation — latency independent of load and
  of other clients, but it can only implement read/write objects;
* an **AB-replicated register** costs a consensus round per write —
  more messages and higher latency, but it serialises *arbitrary*
  read-modify-write commands, which static quorums cannot.

The table reports per-write latency and messages for both, across
cluster sizes.  The shape — quorum cheaper per op, AB paying for its
stronger semantics — is the motivation for combining them.
"""

from __future__ import annotations

import random

from common import emit_table

from repro.apps.kvstore import KeyValueStore
from repro.harness.cluster import Cluster, ClusterConfig
from repro.quorum.register import QuorumRegister
from repro.sim.kernel import Simulator
from repro.sim.process import Node
from repro.storage.memory import MemoryStorage
from repro.transport.endpoint import Endpoint
from repro.transport.network import Network, NetworkConfig

SIZES = (3, 5, 7)
WRITES = 20


def quorum_case(n, seed=25):
    sim = Simulator()
    net = Network(sim, random.Random(seed), NetworkConfig(loss_rate=0.02))
    nodes, registers = {}, {}
    for i in range(n):
        node = Node(sim, i, MemoryStorage())
        endpoint = node.add_component(Endpoint(net))
        registers[i] = node.add_component(QuorumRegister(endpoint))
        net.register(node)
        nodes[i] = node
    for node in nodes.values():
        node.start()
    latencies = []

    def client():
        for index in range(WRITES):
            started = sim.now
            yield from registers[0].write(("v", index))
            latencies.append(sim.now - started)
            yield 0.05

    nodes[0].spawn(client(), "client")
    sim.run(until=200.0)
    assert len(latencies) == WRITES
    return (sum(latencies) / len(latencies),
            net.metrics.sent / WRITES)


def abcast_case(n, seed=25):
    cluster = Cluster(ClusterConfig(
        n=n, seed=seed, protocol="basic",
        network=NetworkConfig(loss_rate=0.02),
        app_factory=KeyValueStore))
    cluster.start()
    latencies = []

    def client():
        for index in range(WRITES):
            started = cluster.sim.now
            yield from cluster.abcasts[0].broadcast(
                ("put", "reg", index))
            latencies.append(cluster.sim.now - started)
            yield 0.05

    cluster.nodes[0].spawn(client(), "client")
    cluster.run(until=200.0)
    assert len(latencies) == WRITES
    return (sum(latencies) / len(latencies),
            cluster.network.metrics.sent / WRITES)


def test_x3_quorum_vs_abcast(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for n in SIZES:
            q_lat, q_msgs = quorum_case(n)
            a_lat, a_msgs = abcast_case(n)
            rows.append([n, q_lat, a_lat, q_msgs, a_msgs,
                         a_lat / q_lat])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "X3  Write cost: quorum register vs AB-replicated register",
        ["nodes", "quorum lat", "abcast lat", "quorum msgs/op",
         "abcast msgs/op", "abcast/quorum"],
        rows,
        note="quorums: 2 majority round-trips, read/write objects only; "
             "AB: a consensus round per write, but arbitrary RMW "
             "commands (Section 6.3's trade)")
    for row in rows:
        assert row[1] < row[2]   # quorum writes are cheaper per op
        assert row[3] < row[4]   # and use fewer messages
