"""Shared machinery for the experiment benchmarks.

Every ``bench_e*.py`` regenerates one claim of the paper (see the
experiment index in DESIGN.md).  The simulation itself runs under
``benchmark.pedantic`` so pytest-benchmark reports wall-clock cost, and
the *scientific* output — the table whose shape reproduces the claim —
is printed through :func:`emit`, which bypasses pytest's capture so it
always appears in ``bench_output.txt``.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable, List, Optional, Sequence

from repro.harness.report import format_table

__all__ = ["emit", "emit_table", "run_verified", "catch_up_probe"]


# Experiment tables accumulate here; the pytest_terminal_summary hook in
# benchmarks/conftest.py flushes them past pytest's output capture at the
# end of the run, so `pytest benchmarks/ --benchmark-only | tee ...`
# always records them.
EMITTED: List[str] = []


def emit(text: str) -> None:
    """Queue experiment output for the end-of-run summary (and echo it
    immediately when capture is off)."""
    EMITTED.append(text)
    print(text)


def emit_table(title: str, headers: Sequence[str],
               rows: Iterable[Sequence[Any]],
               note: Optional[str] = None) -> None:
    """Render and emit one experiment table."""
    emit(format_table(title, headers, rows, note))


def run_verified(scenario):
    """Run a scenario and insist it verifies (experiments never report
    numbers from an incorrect execution)."""
    from repro.harness.scenario import run_scenario
    result = run_scenario(scenario)
    assert result.report is not None
    return result


def catch_up_probe(cluster, node_id: int, target_rounds: int,
                   limit: float, step: float = 0.25) -> float:
    """Advance the simulation until ``node_id`` reaches ``target_rounds``
    and return the virtual time it took from now; ``float('inf')`` if the
    limit passes first."""
    start = cluster.sim.now
    while cluster.sim.now < start + limit:
        if cluster.abcasts[node_id].k >= target_rounds:
            return cluster.sim.now - start
        cluster.run(until=cluster.sim.now + step)
    return float("inf")
