"""X2 (ablations) — internal design-choice sweeps called out in DESIGN.md.

Not paper claims, but the knobs a practitioner tunes:

* **Gossip period** trades dissemination latency against bandwidth —
  the gossip task is the protocol's only dissemination mechanism
  (Section 4.1), so its period lower-bounds how fast a message reaches a
  proposer.
* **Failure-detector timeout** trades crash-detection (and therefore
  consensus leader fail-over) speed against false-suspicion risk; the
  Atomic Broadcast layer itself never reads it.
"""

from __future__ import annotations

from common import emit_table, run_verified

from repro.harness.cluster import ClusterConfig
from repro.harness.scenario import Scenario
from repro.sim.faults import FaultSchedule
from repro.transport.network import NetworkConfig
from repro.workloads.generators import PoissonWorkload

GOSSIP_PERIODS = (0.05, 0.25, 1.0)
FD_TIMEOUTS = (1.0, 2.0, 4.0)


def test_x2a_gossip_period(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for period in GOSSIP_PERIODS:
            result = run_verified(Scenario(
                cluster=ClusterConfig(
                    n=3, seed=19, protocol="basic",
                    network=NetworkConfig(loss_rate=0.1),
                    gossip_interval=period),
                workload=PoissonWorkload(1.5, 10.0, seed=19),
                duration=15.0, settle_limit=200.0))
            latency = result.metrics.latency_summary()
            gossip_msgs = result.metrics.network.get("sent", 0)
            by_type = result.cluster.network.metrics.by_type
            rows.append([period, latency["p50"], latency["p95"],
                         by_type.get("ab.gossip", 0),
                         result.metrics.messages_delivered])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "X2a  Gossip period: latency vs bandwidth",
        ["gossip period", "lat p50", "lat p95", "gossip msgs",
         "delivered"],
        rows,
        note="faster gossip => lower latency at proportionally higher "
             "background traffic; correctness unaffected")
    assert rows[0][3] > rows[-1][3]          # more gossip when faster
    assert rows[0][2] <= rows[-1][2] * 2.5   # and no worse tail latency


def test_x2b_fd_timeout_failover(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for timeout in FD_TIMEOUTS:
            result = run_verified(Scenario(
                cluster=ClusterConfig(
                    n=3, seed=20, protocol="basic",
                    network=NetworkConfig(loss_rate=0.03),
                    fd_timeout=timeout),
                workload=PoissonWorkload(1.0, 12.0, seed=20),
                # Kill the Ω leader mid-run: ordering stalls until the
                # detector suspects it and consensus fails over.
                faults=FaultSchedule().crash(4.0, 0).recover(10.0, 0),
                duration=20.0, settle_limit=300.0))
            latency = result.metrics.latency_summary()
            rows.append([timeout, latency["p50"], latency["p95"],
                         latency["max"],
                         result.metrics.messages_delivered])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "X2b  Failure-detector timeout vs leader-crash stall",
        ["fd timeout", "lat p50", "lat p95", "lat max", "delivered"],
        rows,
        note="the worst-case latency spike after a leader crash tracks "
             "the suspicion timeout; steady-state latency is unaffected")
    # The tail (messages caught in the fail-over window) grows with the
    # detection timeout.
    assert rows[0][3] < rows[-1][3]
