"""E8 — Reduction to Chandra-Toueg in the crash-stop model (Section 5.6, 6.1).

Claim: "when crashes are definitive, the protocol reduces to the
Chandra-Toueg's Atomic Broadcast protocol" — i.e. in a crash-stop run
our protocol's behaviour and cost converge to the classic transformation,
modulo the durability it pays for being recovery-capable.

Regenerated evidence: identical crash-stop scenarios (reliable network,
one definitive crash) run over (a) our protocol with durable consensus
and (b) the literal CT baseline (◇S consensus, zero logging).  Delivery
counts, batching and latency line up; the only divergence is the log
column — the price of crash-recovery readiness, which the CT protocol
simply cannot pay back (a recovered CT process would violate safety).
"""

from __future__ import annotations

from common import emit_table, run_verified

from repro.harness.cluster import ClusterConfig
from repro.harness.scenario import Scenario
from repro.sim.faults import FaultSchedule
from repro.transport.network import NetworkConfig
from repro.workloads.generators import PoissonWorkload

CASES = [("ours (crash-recovery ready)", "basic"),
         ("Chandra-Toueg baseline", "ct")]


def run_case(protocol, seed=14):
    return run_verified(Scenario(
        cluster=ClusterConfig(n=3, seed=seed, protocol=protocol,
                              network=NetworkConfig(loss_rate=0.0)),
        workload=PoissonWorkload(2.0, 12.0, seed=seed),
        faults=FaultSchedule().crash(8.0, 2),  # definitive crash
        duration=18.0, settle_limit=120.0,
        good_nodes=[0, 1]))


def test_e8_crash_stop_reduction(benchmark):
    rows = []

    def compare():
        rows.clear()
        for label, protocol in CASES:
            result = run_case(protocol)
            metrics = result.metrics
            latency = metrics.latency_summary()
            rows.append([
                label,
                metrics.messages_delivered,
                result.report.rounds,
                latency["p50"], latency["p95"],
                metrics.total_log_ops(),
                metrics.network["sent"],
            ])
        return rows

    benchmark.pedantic(compare, rounds=1, iterations=1)
    emit_table(
        "E8  Crash-stop run: ours vs the Chandra-Toueg transformation",
        ["protocol", "delivered", "rounds", "lat p50", "lat p95",
         "log ops", "msgs sent"],
        rows,
        note="claim: same deliveries and comparable latency; the log "
             "column is the whole difference — durability CT does not "
             "provide")
    ours, ct = rows
    assert ours[1] == ct[1]                 # same messages ordered
    assert ct[5] == 0                       # CT never logs
    assert ours[5] > 0                      # we pay for recoverability
    assert ours[3] < ct[3] * 5              # latency in the same regime
    assert ct[3] < ours[3] * 5
