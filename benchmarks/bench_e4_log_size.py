"""E4 — Application-level checkpoints bound log size (Section 5.2).

Claim: "a checkpoint of the application state can substitute the
associated prefix of the delivered message log ... this not only offers
a shorter replay phase but also prevents the number of entries in the
logs from growing indefinitely."

Regenerated evidence: a replicated KV store absorbing update streams of
increasing length.  Without application checkpoints, stable-storage
residency (live bytes on disk) grows linearly with history; with the
A-checkpoint upcall registered, residency stays flat — the checkpoint
*contains* the history.  The explicit Agreed suffix shows the same
contrast in message counts.
"""

from __future__ import annotations

from common import emit_table

from repro.apps.counter import SequenceRecorder
from repro.apps.kvstore import KeyValueStore
from repro.core.alternative import AlternativeConfig
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.verify import verify_run
from repro.transport.network import NetworkConfig
from repro.workloads.generators import ScheduledWorkload

HISTORIES = (30, 60, 120)


def run_case(history, app_checkpoint, seed=9):
    # The KV store overwrites a small key set, so its state stays small
    # no matter how long the history — the case Section 5.2 motivates.
    # SequenceRecorder (state == full history) is the control.
    app_factory = KeyValueStore if app_checkpoint else SequenceRecorder
    alt = AlternativeConfig(checkpoint_interval=1.0, delta=3)
    cluster = Cluster(ClusterConfig(
        n=3, seed=seed, protocol="alternative",
        network=NetworkConfig(loss_rate=0.02), alt=alt,
        app_factory=app_factory))
    # Only the KV store registers a *bounded* A-checkpoint; the recorder
    # checkpoints its entire (growing) history.
    cluster.start()
    plan = [(0.5 + 0.1 * j, j % 3, ("put", f"k{j % 8}", j))
            for j in range(history)]
    ScheduledWorkload(plan).install(cluster)
    cluster.run(until=0.5 + 0.1 * history + 5.0)
    assert cluster.settle(limit=200.0)
    verify_run(cluster)
    node = cluster.nodes[0]
    ab = cluster.abcasts[0]
    return (node.storage.total_bytes_stored(),
            len(ab.agreed.sequence()),
            ab.agreed.checkpointed_count)


def test_e4_log_size_bounded_by_app_checkpoints(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for history in HISTORIES:
            flat_bytes, flat_suffix, flat_ckpt = run_case(history, True)
            grow_bytes, grow_suffix, grow_ckpt = run_case(history, False)
            rows.append([history, flat_bytes, grow_bytes,
                         flat_suffix, grow_suffix])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "E4  Stable-storage residency vs history length",
        ["history (msgs)", "bytes (bounded A-ckpt)",
         "bytes (growing state)", "suffix (bounded)", "suffix (growing)"],
        rows,
        note="claim: an application checkpoint that 'contains' the "
             "delivered prefix keeps the durable footprint flat; "
             "checkpointing a state that embeds full history grows "
             "linearly")
    bounded = [row[1] for row in rows]
    growing = [row[2] for row in rows]
    # Growing state scales with history...
    assert growing[-1] > growing[0] * 2
    # ...while the bounded app's footprint stays within a narrow band.
    assert bounded[-1] < bounded[0] * 2
    assert bounded[-1] < growing[-1]
