"""X1 (extension) — Multi-group total order multicast (Section 6.4).

The paper's closing pointer: consensus-based multi-group multicast "can
be extended to crash-recovery systems using an approach similar to the
one that has been followed here."  This experiment exercises our
implementation of that extension and quantifies the *genuineness*
property that makes multi-group multicast interesting: groups not
addressed by a message do no ordering work for it.

The table sweeps the fraction of cross-group traffic in a two-group
topology and reports per-group agreement, pairwise total order across
groups, and the consensus rounds each group ran — single-group traffic
only burdens its own group.
"""

from __future__ import annotations

from common import emit_table

from repro.multigroup import MultiGroupCluster
from repro.transport.network import NetworkConfig

CROSS_FRACTIONS = (0.0, 0.25, 0.75)
MESSAGES = 24


def run_case(cross_fraction, seed=18):
    cluster = MultiGroupCluster(
        {"g1": [0, 1, 2], "g2": [2, 3, 4]}, seed=seed,
        network=NetworkConfig(loss_rate=0.03))
    cluster.start()
    cross_every = (int(1 / cross_fraction) if cross_fraction else None)
    for index in range(MESSAGES):
        when = 0.5 + 0.25 * index
        if cross_every and index % cross_every == 0:
            cluster.sim.schedule(when, cluster.multicast, 2,
                                 f"x{index}", ["g1", "g2"])
        elif index % 2 == 0:
            cluster.sim.schedule(when, cluster.multicast, 0,
                                 f"a{index}", ["g1"])
        else:
            cluster.sim.schedule(when, cluster.multicast, 3,
                                 f"b{index}", ["g2"])
    # One crash-recovery of the bridge in every configuration.
    cluster.sim.schedule(3.0, cluster.nodes[2].crash)
    cluster.sim.schedule(5.0, cluster.nodes[2].recover)
    cluster.run(until=120.0)
    cluster.check_group_agreement("g1")
    cluster.check_group_agreement("g2")
    cluster.check_pairwise_total_order()
    delivered_g1 = len(cluster.layers[0].delivered_in("g1"))
    delivered_g2 = len(cluster.layers[3].delivered_in("g2"))
    rounds_g1 = cluster.group_abs[0]["g1"].k
    rounds_g2 = cluster.group_abs[3]["g2"].k
    return delivered_g1, delivered_g2, rounds_g1, rounds_g2


def test_x1_multigroup_multicast(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for fraction in CROSS_FRACTIONS:
            d1, d2, r1, r2 = run_case(fraction)
            rows.append([f"{fraction:.0%}", d1, d2, r1, r2, "yes"])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "X1  Multi-group multicast: agreement and per-group work "
        f"({MESSAGES} msgs, overlapping groups, bridge crash)",
        ["cross traffic", "delivered g1", "delivered g2",
         "rounds g1", "rounds g2", "order verified"],
        rows,
        note="extension of Section 6.4: pairwise total order holds "
             "across groups and through a bridge crash; single-group "
             "messages never burden the other group")
    assert all(row[-1] == "yes" for row in rows)
