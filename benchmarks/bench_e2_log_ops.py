"""E2 — Minimal logging (Section 4.3).

Claim: "Atomic Broadcast can be implemented without requiring any
additional log operations in excess of those required by the Consensus"
— and a naive port that treats every variable as critical (the eager
baseline) pays far more.

Regenerated evidence: durable writes per A-delivered message, split by
storage-key prefix.  The ``ab/msg`` column must be ~0 for the basic
protocol (its only 'ab' write is one incarnation bump per process start,
amortised to nothing), strictly positive for the alternative protocol
(that is the price of its faster recovery), and large for the eager
baseline.  The crash-stop reduction (ct) writes nothing at all.
"""

from __future__ import annotations

from common import emit_table, run_verified

from repro.core.alternative import AlternativeConfig
from repro.harness.cluster import ClusterConfig
from repro.harness.scenario import Scenario
from repro.transport.network import NetworkConfig
from repro.workloads.generators import PoissonWorkload

CASES = [
    ("basic", None, 0.05),
    ("alternative", AlternativeConfig(checkpoint_interval=2.0, delta=3), 0.05),
    ("alternative+log-unord",
     AlternativeConfig(checkpoint_interval=2.0, delta=3,
                       log_unordered=True), 0.05),
    ("eager", None, 0.05),
    ("ct (crash-stop)", None, 0.0),
]


def run_case(label, alt, loss, seed=7):
    protocol = {"alternative+log-unord": "alternative",
                "ct (crash-stop)": "ct"}.get(label, label)
    result = run_verified(Scenario(
        cluster=ClusterConfig(n=3, seed=seed, protocol=protocol,
                              network=NetworkConfig(loss_rate=loss),
                              alt=alt),
        workload=PoissonWorkload(2.0, 15.0, seed=seed),
        duration=20.0, settle_limit=120.0))
    return result.metrics


def test_e2_log_operations_per_message(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for label, alt, loss in CASES:
            metrics = run_case(label, alt, loss)
            delivered = metrics.messages_delivered
            by_prefix = metrics.log_ops_by_prefix()
            rows.append([
                label, delivered,
                by_prefix.get("consensus", 0) / delivered,
                by_prefix.get("paxos", 0) / delivered,
                by_prefix.get("ab", 0) / delivered,
                metrics.total_log_ops() / delivered,
            ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "E2  Durable log operations per A-delivered message (by layer)",
        ["protocol", "delivered", "consensus/msg", "acceptor/msg",
         "ab/msg", "total/msg"],
        rows,
        note="claim: basic AB adds ~0 'ab' writes beyond Consensus; "
             "eager logs every Unordered/Agreed update; crash-stop CT "
             "logs nothing")
    by_label = {row[0]: row for row in rows}
    assert by_label["basic"][4] < 0.05          # ~zero AB-layer writes
    assert by_label["eager"][4] > 10 * max(by_label["basic"][4], 0.01)
    assert by_label["ct (crash-stop)"][5] == 0  # the reduction claim
