"""E3 — Checkpointing shortens recovery (Section 5.1).

Claim: "faster recovery can be obtained at the expense of periodically
checkpointing [k and Agreed] ... that must weight the cost of
checkpointing against the cost of replaying".

Regenerated evidence: a sweep over checkpoint frequency with load
flowing right up to the crash.  The recovering node's *replay work*
(consensus rounds re-executed and stable-storage reads performed during
recovery) falls monotonically as checkpoints become more frequent, while
checkpoint log traffic rises — the exact trade-off the paper describes.
"never" (no checkpoint task) is the basic protocol's full replay from
round 0.

Replay happens against the local log, so it costs (virtual) time only
when a decision is missing locally; the honest cost metric is work, not
simulated seconds.
"""

from __future__ import annotations

from common import emit_table

from repro.core.alternative import AlternativeConfig
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.verify import verify_run
from repro.transport.network import NetworkConfig
from repro.workloads.generators import ScheduledWorkload

INTERVALS = [("0.5", 0.5), ("1.0", 1.0), ("2.0", 2.0), ("5.0", 5.0),
             ("never", None)]
CRASH_AT = 12.0


def run_case(interval, seed=8):
    alt = AlternativeConfig(checkpoint_interval=interval, delta=None)
    cluster = Cluster(ClusterConfig(
        n=3, seed=seed, protocol="alternative",
        network=NetworkConfig(loss_rate=0.03), alt=alt))
    cluster.start()
    # Load flows right up to the crash instant.
    plan = [(0.5 + 0.15 * j, j % 3, ("m", j)) for j in range(74)]
    ScheduledWorkload(plan).install(cluster)
    cluster.run(until=CRASH_AT)
    cluster.nodes[1].crash()
    cluster.run(until=CRASH_AT + 0.5)
    reads_before = cluster.nodes[1].storage.metrics.retrievals
    cluster.nodes[1].recover()
    cluster.run(until=CRASH_AT + 60.0)
    assert cluster.settle(limit=CRASH_AT + 200.0)
    verify_run(cluster)
    ab = cluster.abcasts[1]
    recovery_reads = (cluster.nodes[1].storage.metrics.retrievals
                      - reads_before)
    ckpt_writes = cluster.nodes[1].storage.metrics.ops_by_prefix.get(
        "ab", 0)
    return (ab.replayed_rounds, recovery_reads, ab.checkpoints_taken,
            ckpt_writes)


def test_e3_recovery_vs_checkpoint_frequency(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for label, interval in INTERVALS:
            replayed, reads, ckpts, writes = run_case(interval)
            rows.append([label, replayed, reads, ckpts, writes])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "E3  Recovery cost vs checkpoint frequency "
        "(74 messages of history, crash at t=12)",
        ["ckpt interval", "rounds replayed", "recovery reads",
         "ckpts taken", "ab log writes"],
        rows,
        note="claim: frequent checkpoints => little replay work, paid "
             "for in checkpoint writes; 'never' = the basic protocol's "
             "full replay from round 0")
    replayed = [row[1] for row in rows]
    assert replayed[0] <= min(replayed)     # most frequent replays least
    assert replayed[-1] == max(replayed)    # no checkpoints replays most
    assert replayed[-1] >= 5 * max(replayed[0], 1)
    writes = [row[4] for row in rows]
    assert writes[0] > writes[-2] > writes[-1]  # the price of frequency
