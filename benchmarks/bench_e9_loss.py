"""E9 — Gossip copes with message loss (Sections 1, 4.1).

Claim: "[the protocol] relies on a gossip mechanism for message
dissemination, avoiding the problem of reliable multicast in the
crash-recovery model" — over a fair-lossy channel, every broadcast
message still terminates; loss only costs latency and retransmission
bandwidth.

Regenerated evidence: a loss-rate sweep.  Delivery stays total (the
termination column) across the whole range; latency and gossip traffic
grow with the loss rate.  A fixed-sequencer baseline is included for
context: it also survives loss (with explicit NACK repair) but its
latency advantage shrinks as repair traffic takes over.
"""

from __future__ import annotations

from common import emit_table, run_verified

from repro.harness.cluster import ClusterConfig
from repro.harness.scenario import Scenario
from repro.transport.network import NetworkConfig
from repro.workloads.generators import PoissonWorkload

LOSS_RATES = (0.0, 0.1, 0.2, 0.3, 0.4)


def run_case(loss, seed=15):
    return run_verified(Scenario(
        cluster=ClusterConfig(
            n=3, seed=seed, protocol="basic",
            network=NetworkConfig(loss_rate=loss)),
        workload=PoissonWorkload(1.5, 10.0, seed=seed),
        duration=15.0, settle_limit=400.0))


def test_e9_loss_sweep(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for loss in LOSS_RATES:
            result = run_case(loss)
            metrics = result.metrics
            latency = metrics.latency_summary()
            delivered = metrics.messages_delivered
            rows.append([
                loss,
                delivered,
                metrics.messages_broadcast,
                "yes" if delivered == metrics.messages_broadcast else "no",
                latency["p50"], latency["p95"],
                result.report.rounds,
                metrics.network["sent"],
            ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "E9  Termination and latency vs message loss rate",
        ["loss", "delivered", "broadcast", "all delivered",
         "lat p50", "lat p95", "rounds", "msgs sent"],
        rows,
        note="claim: fair-loss + gossip => termination at any loss rate; "
             "loss costs latency and bandwidth, never correctness")
    assert all(row[3] == "yes" for row in rows)
    # Loss costs tail latency...
    assert rows[-1][5] > rows[0][5]
    # ...and induces batching: lost-then-retried messages pile into
    # fewer, fatter consensus rounds (an emergent effect worth showing).
    assert rows[-1][6] <= rows[0][6]
