"""E5 — State transfer lets a late process skip missed rounds (Section 5.3).

Claim: "a process that has been down for a long period may have missed
many Consensus and may require a long time to catch-up ... [with a state
message it] effectively skips the Consensus instances it has missed.
The amount of de-synchronisation that triggers a state transfer can be
tuned through the variable Δ."

Regenerated evidence: one node sleeps through a burst of rounds; we
sweep Δ (including "off").  With state transfer enabled, the returning
node adopts a peer's Agreed queue and skips rounds — catch-up takes a
bounded number of replayed instances regardless of outage length.  With
Δ=off it must re-run every missed instance.  Larger Δ trades fewer state
messages (bytes) for more replay.
"""

from __future__ import annotations

from common import catch_up_probe, emit_table

from repro.core.alternative import AlternativeConfig
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.verify import verify_run
from repro.transport.network import NetworkConfig
from repro.workloads.generators import ScheduledWorkload

DELTAS = [("1", 1), ("2", 2), ("4", 4), ("8", 8), ("off", None)]
MISSED_MESSAGES = 60


def run_case(delta, seed=10):
    alt = AlternativeConfig(checkpoint_interval=2.0, delta=delta)
    cluster = Cluster(ClusterConfig(
        n=3, seed=seed, protocol="alternative",
        network=NetworkConfig(loss_rate=0.03), alt=alt))
    cluster.start()
    cluster.run(until=1.0)
    cluster.nodes[2].crash()
    plan = [(1.5 + 0.1 * j, j % 2, ("m", j))
            for j in range(MISSED_MESSAGES)]
    ScheduledWorkload(plan).install(cluster)
    cluster.run(until=10.0)
    target_rounds = cluster.abcasts[0].k
    cluster.nodes[2].recover()
    k_at_recovery = cluster.abcasts[2].k  # restored from its checkpoint
    catch_up = catch_up_probe(cluster, 2, target_rounds, limit=120.0)
    assert cluster.settle(limit=400.0)
    verify_run(cluster)
    ab = cluster.abcasts[2]
    # Rounds the late node had to re-execute through consensus (instead
    # of skipping via a state message).
    rerun = max(0, ab.k - k_at_recovery - ab.rounds_skipped)
    state_msgs = cluster.network.metrics.by_type.get("ab.state", 0)
    return (catch_up, ab.rounds_skipped, rerun,
            ab.state_transfers_adopted, state_msgs, target_rounds)


def test_e5_state_transfer_catch_up(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for label, delta in DELTAS:
            (catch_up, skipped, replayed, adopted, state_msgs,
             target) = run_case(delta)
            rows.append([label, target, catch_up, skipped, replayed,
                         adopted, state_msgs])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "E5  Catch-up after a long outage vs Δ "
        f"({MISSED_MESSAGES} messages missed)",
        ["Δ", "rounds missed", "catch-up time", "rounds skipped",
         "rounds replayed", "state adoptions", "state msgs sent"],
        rows,
        note="claim: with state transfer the late process skips the "
             "missed instances; Δ=off forces it to re-run every one")
    by_delta = {row[0]: row for row in rows}
    # State transfer actually skipped rounds for small Δ...
    assert by_delta["1"][3] > 0
    assert by_delta["2"][3] > 0
    # ...and Δ=off replayed (re-ran) far more instances than Δ=1.
    assert by_delta["off"][4] > by_delta["1"][4]
    assert by_delta["off"][5] == 0 and by_delta["off"][6] == 0
