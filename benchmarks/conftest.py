"""Benchmark-suite plumbing.

* Puts the ``benchmarks/`` directory on ``sys.path`` so bench modules can
  ``from common import ...`` regardless of invocation directory.
* Flushes every experiment table queued through :func:`common.emit` into
  the terminal summary, past pytest's output capture — the tables are the
  scientific payload of the benchmark run and must always be visible.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    import common
    if not common.EMITTED:
        return
    terminalreporter.section("reproduced experiment tables")
    for block in common.EMITTED:
        terminalreporter.write(block + "\n")
