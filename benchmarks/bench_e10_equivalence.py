"""E10 — Consensus ⇔ Atomic Broadcast equivalence (Section 6.1).

Claim: "to propose a value a process atomically broadcasts it; the first
value to be delivered can be chosen as the decided value.  Thus, both
problems are equivalent in asynchronous crash-recovery systems."

Regenerated evidence: the reduction of :mod:`repro.core.equivalence`
run for many instances across seeds and a crash: every instance reaches
uniform agreement on a proposed value, and a recovered process re-learns
its decisions purely from replay — zero log operations of the reduction's
own.
"""

from __future__ import annotations

import random

from common import emit_table

from repro.consensus.paxos import PaxosConsensus
from repro.core.basic import BasicAtomicBroadcast
from repro.core.equivalence import ConsensusFromAtomicBroadcast
from repro.fdetect.heartbeat import HeartbeatDetector
from repro.fdetect.omega import OmegaOracle
from repro.sim.kernel import Simulator
from repro.sim.process import Node
from repro.storage.memory import MemoryStorage
from repro.transport.endpoint import Endpoint
from repro.transport.network import Network, NetworkConfig

SEEDS = (21, 22, 23)
INSTANCES = 5


def run_case(seed):
    sim = Simulator()
    net = Network(sim, random.Random(seed), NetworkConfig(loss_rate=0.05))
    nodes, reductions = {}, {}
    for i in range(3):
        node = Node(sim, i, MemoryStorage())
        endpoint = node.add_component(Endpoint(net))
        detector = node.add_component(HeartbeatDetector(endpoint))
        omega = node.add_component(OmegaOracle(detector))
        consensus = node.add_component(PaxosConsensus(endpoint, omega))
        abcast = node.add_component(
            BasicAtomicBroadcast(endpoint, consensus))
        reductions[i] = node.add_component(
            ConsensusFromAtomicBroadcast(abcast))
        net.register(node)
        nodes[i] = node
    for node in nodes.values():
        node.start()
    for k in range(INSTANCES):
        for i in range(3):
            sim.schedule(0.5 + 0.3 * k, reductions[i].propose, k,
                         f"s{seed}-k{k}-v{i}")
    sim.run(until=30.0)
    nodes[2].crash()
    sim.run(until=32.0)
    nodes[2].recover()
    sim.run(until=90.0)
    agreed = valid = relearned = 0
    for k in range(INSTANCES):
        values = [reductions[i].decided_value(k) for i in range(3)]
        if values[0] is not None and values.count(values[0]) == 3:
            agreed += 1
        if values[0] is not None and values[0].startswith(f"s{seed}-k{k}"):
            valid += 1
        if values[2] is not None:
            relearned += 1
    return agreed, valid, relearned


def test_e10_equivalence(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for seed in SEEDS:
            agreed, valid, relearned = run_case(seed)
            rows.append([seed, INSTANCES, agreed, valid, relearned])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "E10  Consensus built from Atomic Broadcast (the reverse reduction)",
        ["seed", "instances", "uniform agreement", "validity",
         "re-learned after recovery"],
        rows,
        note="claim: AB => consensus with zero extra logging; recovered "
             "processes re-derive decisions from the replayed sequence")
    for row in rows:
        assert row[2] == INSTANCES
        assert row[3] == INSTANCES
        assert row[4] == INSTANCES
