"""E11 — Non-blocking liveness despite bad processes (Sections 1, 7).

Claim: "as long as the underlying Consensus is live, the Atomic
Broadcast protocol does not block good processes despite the behavior of
bad processes."

Regenerated evidence: runs with 0, 1 and 2 oscillating *bad* processes
(they crash and recover forever) in clusters sized so the good processes
still form the consensus majority.  Good-process throughput stays in the
same regime across the sweep — the bad processes cost some bandwidth and
latency but never block the ordering pipeline.
"""

from __future__ import annotations

from common import emit_table, run_verified

from repro.harness.cluster import ClusterConfig
from repro.harness.scenario import Scenario
from repro.sim.faults import RandomFaults
from repro.transport.network import NetworkConfig
from repro.workloads.generators import PoissonWorkload

# (label, n, bad node ids): good majority preserved in every case.
CASES = [("0 bad / 5 nodes", 5, ()),
         ("1 bad / 5 nodes", 5, (4,)),
         ("2 bad / 5 nodes", 5, (3, 4))]


def run_case(n, bad, seed=16):
    good = [i for i in range(n) if i not in bad]
    result = run_verified(Scenario(
        cluster=ClusterConfig(n=n, seed=seed, protocol="basic",
                              network=NetworkConfig(loss_rate=0.03)),
        # Only good nodes offer load: bad-process submissions may be
        # legitimately lost, which would muddy the throughput signal.
        workload=PoissonWorkload(
            1.0, 15.0, seed=seed,
            payload_fn=lambda node, idx: ("m", node, idx)),
        faults=RandomFaults(mttf=3.0, mttr=1.0, stabilize_at=20.0,
                            seed=seed, bad_nodes=list(bad)),
        duration=30.0, settle_limit=400.0, good_nodes=good))
    return result


def test_e11_nonblocking_liveness(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for label, n, bad in CASES:
            result = run_case(n, bad)
            metrics = result.metrics
            bad_crashes = sum(metrics.node_stats[i]["crashes"]
                              for i in bad)
            latency = metrics.latency_summary()
            rows.append([label, metrics.messages_delivered,
                         metrics.throughput, latency["p50"],
                         bad_crashes])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "E11  Good-process progress despite oscillating bad processes",
        ["configuration", "delivered", "throughput", "lat p50",
         "bad-node crashes"],
        rows,
        note="claim: bad processes cannot block good ones while the "
             "good majority keeps consensus live")
    baseline = rows[0][2]
    for row in rows[1:]:
        assert row[1] > 0
        assert row[2] > baseline / 4  # same regime, not blocked
