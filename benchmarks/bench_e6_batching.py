"""E6 — Batching and the early-return A-broadcast (Section 5.4).

Two claims:

1. "For better throughput ... propose batches of messages to a single
   instance of Consensus."  The protocol batches naturally: everything
   in the Unordered set rides the next proposal.  As offered load grows,
   messages-per-round grows and per-message consensus cost falls — so
   ordered throughput scales far better than rounds do.
2. "In order to return earlier, the A-broadcast interface needs to log
   the Unordered set."  With ``log_unordered`` the client's A-broadcast
   returns as soon as the message is durable, not when it is ordered.
"""

from __future__ import annotations

from common import emit_table, run_verified

from repro.core.alternative import AlternativeConfig
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.scenario import Scenario
from repro.transport.network import NetworkConfig
from repro.workloads.generators import PoissonWorkload

RATES = (0.5, 2.0, 8.0, 24.0)


def test_e6a_batching_throughput(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for rate in RATES:
            result = run_verified(Scenario(
                cluster=ClusterConfig(
                    n=3, seed=11, protocol="alternative",
                    network=NetworkConfig(loss_rate=0.02),
                    alt=AlternativeConfig(checkpoint_interval=2.0)),
                workload=PoissonWorkload(rate, 12.0, seed=11),
                duration=16.0, settle_limit=200.0))
            delivered = result.metrics.messages_delivered
            rounds = max(result.report.rounds, 1)
            latency = result.metrics.latency_summary()
            rows.append([rate * 3, delivered, rounds,
                         delivered / rounds,
                         result.metrics.throughput,
                         latency["p50"], latency["p95"]])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "E6a  Batching: consensus rounds amortise across offered load",
        ["offered (msg/s)", "delivered", "rounds", "msgs/round",
         "throughput", "lat p50", "lat p95"],
        rows,
        note="claim: load rides into fewer, fatter consensus instances; "
             "throughput scales while rounds barely grow")
    batching = [row[3] for row in rows]
    assert batching[-1] > 4 * batching[0]   # batching factor grows
    throughput = [row[4] for row in rows]
    assert throughput[-1] > 10 * throughput[0]


def _return_latency(log_unordered, seed=12):
    """Mean virtual time an A-broadcast call blocks its caller."""
    alt = AlternativeConfig(checkpoint_interval=2.0,
                            log_unordered=log_unordered)
    cluster = Cluster(ClusterConfig(
        n=3, seed=seed, protocol="alternative",
        network=NetworkConfig(loss_rate=0.02), alt=alt))
    cluster.start()
    waits = []

    def client(node_id):
        for index in range(10):
            yield 0.4
            started = cluster.sim.now
            yield from cluster.abcasts[node_id].broadcast(
                ("c", node_id, index))
            waits.append(cluster.sim.now - started)

    for node_id in range(3):
        cluster.nodes[node_id].spawn(client(node_id), "client")
    cluster.run(until=40.0)
    assert cluster.settle(limit=120.0)
    return sum(waits) / len(waits), len(waits)


def test_e6b_early_return_with_logged_unordered(benchmark):
    rows = []

    def compare():
        rows.clear()
        for label, flag in (("wait-until-ordered", False),
                            ("log-and-return (5.4)", True)):
            mean_wait, calls = _return_latency(flag)
            rows.append([label, calls, mean_wait])
        return rows

    benchmark.pedantic(compare, rounds=1, iterations=1)
    emit_table(
        "E6b  A-broadcast return latency (client-observed)",
        ["mode", "calls", "mean return latency"],
        rows,
        note="claim: logging the Unordered set lets A-broadcast return "
             "on durability instead of waiting for the ordering round")
    ordered_wait = rows[0][2]
    logged_wait = rows[1][2]
    assert logged_wait < ordered_wait / 10
