#!/usr/bin/env python3
"""Deferred-update replicated database (Section 6.2).

Implements the Pedone-Guerraoui-Schiper termination protocol the paper
relates to: transactions execute *locally* at one replica against its
snapshot, and only at commit time is the transaction (read set with
versions + write set) pushed through Atomic Broadcast.  Every replica
then certifies transactions in delivery order — identical order means
identical commit/abort verdicts and identical databases, with no atomic
commitment protocol anywhere.

The example runs conflicting and non-conflicting transactions from
different replicas concurrently, crashes a replica mid-stream, and
shows that all replicas agree on every verdict.

Run:  python examples/deferred_update_db.py
"""

from repro import AlternativeConfig, ClusterConfig, NetworkConfig
from repro.apps import CertifyingDatabase, make_transaction
from repro.harness import Cluster, verify_run


def client_session(cluster, replica: int, txn_names, keys, delay: float):
    """A client that executes transactions locally, then certifies them."""

    def body():
        yield delay
        for name, key in zip(txn_names, keys):
            database = cluster.app(replica)
            value, version = database.read(key)      # local snapshot read
            yield 0.3                                 # "thinking time"
            new_value = (value or 0) + 1
            cluster.submit(replica, make_transaction(
                name, reads=[(key, version)], writes=[(key, new_value)]))
            yield 0.2

    cluster.nodes[replica].spawn(body(), f"client@{replica}")


def main() -> None:
    cluster = Cluster(ClusterConfig(
        n=3, seed=5, protocol="alternative",
        network=NetworkConfig(loss_rate=0.05),
        app_factory=CertifyingDatabase,
        alt=AlternativeConfig(checkpoint_interval=2.0, delta=2)))
    cluster.start()

    # Replicas 0 and 1 hammer the SAME key (conflicts guaranteed);
    # replica 2 works on its own key (never conflicts).
    cluster.sim.schedule(0.0, client_session, cluster, 0,
                         [f"r0-t{i}" for i in range(6)],
                         ["hot"] * 6, 0.5)
    cluster.sim.schedule(0.0, client_session, cluster, 1,
                         [f"r1-t{i}" for i in range(6)],
                         ["hot"] * 6, 0.55)
    cluster.sim.schedule(0.0, client_session, cluster, 2,
                         [f"r2-t{i}" for i in range(6)],
                         ["cold"] * 6, 0.5)

    # Crash replica 1 mid-stream; it recovers and re-certifies by replay.
    cluster.sim.schedule(2.0, cluster.crash, 1)
    cluster.sim.schedule(4.0, cluster.recover, 1)

    cluster.run(until=30.0)
    assert cluster.settle(limit=200.0)
    verify_run(cluster)

    print("Certification outcome per replica:")
    for replica in range(3):
        database = cluster.app(replica)
        print(f"  replica {replica}: committed={database.committed} "
              f"aborted={database.aborted} "
              f"abort-rate={database.abort_rate:.0%} "
              f"hot={database.values.get('hot')} "
              f"cold={database.values.get('cold')}")

    databases = [cluster.app(i) for i in range(3)]
    assert all(db.verdicts == databases[0].verdicts for db in databases)
    assert all(db.values == databases[0].values for db in databases)

    hot_commits = sum(1 for name, ok in databases[0].verdicts.items()
                      if ok and not name.startswith("r2"))
    cold_commits = sum(1 for name, ok in databases[0].verdicts.items()
                       if ok and name.startswith("r2"))
    print(f"\nIdentical verdicts everywhere. Contended key 'hot': "
          f"{hot_commits} commits (stale snapshots aborted); "
          f"uncontended 'cold': {cold_commits} commits.")
    print("Total order did the work of an atomic commitment protocol "
          "(Section 6.2).")


if __name__ == "__main__":
    main()
