#!/usr/bin/env python3
"""Quickstart: atomic broadcast in a crash-recovery cluster, in 60 lines.

Builds a 3-process cluster running the paper's basic protocol (Figure 2)
over a lossy network, broadcasts a handful of messages from every
process, crashes one process mid-run, recovers it, and shows that:

* every process delivers exactly the same messages in the same order
  (Total Order + Integrity);
* the recovered process rebuilt its delivery sequence by replaying its
  consensus log (Section 4.2's recovery procedure);
* the run passes the library's built-in verification of all four Atomic
  Broadcast properties.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, NetworkConfig
from repro.harness import Cluster, verify_run


def main() -> None:
    cluster = Cluster(ClusterConfig(
        n=3, seed=42, protocol="basic",
        network=NetworkConfig(loss_rate=0.1, duplicate_rate=0.05)))
    cluster.start()

    # Every process A-broadcasts a few messages, interleaved in time.
    for process in range(3):
        for index in range(4):
            when = 0.5 + 0.3 * index + 0.1 * process
            cluster.sim.schedule(when, cluster.submit, process,
                                 f"p{process}-m{index}")

    # Crash process 2 mid-run; more traffic flows while it is down.
    cluster.sim.schedule(2.0, cluster.crash, 2)
    cluster.sim.schedule(2.5, cluster.submit, 0, "sent-while-2-was-down")
    cluster.sim.schedule(5.0, cluster.recover, 2)

    cluster.run(until=30.0)
    assert cluster.settle(limit=120.0), "cluster did not quiesce"

    sequences = {p: [m.payload for m in ab.deliver_sequence()]
                 for p, ab in cluster.abcasts.items()}
    print("Delivery sequences (13 messages each):")
    for process, sequence in sequences.items():
        recovered = " (crashed & recovered)" if process == 2 else ""
        print(f"  process {process}{recovered}:")
        print(f"    {sequence}")
    assert sequences[0] == sequences[1] == sequences[2]
    print("\nAll three processes delivered the SAME order — including the "
          "one that\ncrashed and replayed its history from stable storage.")

    report = verify_run(cluster)
    print(f"\nVerified: Validity, Integrity, Termination, Total Order "
          f"({len(report.canonical)} messages over {report.rounds} "
          f"consensus rounds).")

    metrics = cluster.metrics()
    print(f"Log operations by layer: {metrics.log_ops_by_prefix()} "
          f"\n  ('ab' is one incarnation bump per start/recovery — the "
          f"protocol itself adds\n   zero log operations beyond the "
          f"consensus black box, Section 4.3)")


if __name__ == "__main__":
    main()
