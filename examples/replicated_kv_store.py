#!/usr/bin/env python3
"""Replicated key-value store with application-level checkpoints.

The paper's motivating use case (Section 1): disseminate updates with
Atomic Broadcast so every replica applies the same writes in the same
order.  This example uses the *alternative* protocol (Figures 3–4) with
everything switched on:

* periodic durable checkpoints of ``(k, Agreed)`` (Section 5.1),
* the A-checkpoint upcall, so the KV state replaces the delivered
  message log and the stable-storage footprint stays bounded
  (Section 5.2),
* Δ-triggered state transfer: a replica that sleeps through a long
  burst catches up by adopting a peer's state instead of re-running
  every missed consensus instance (Section 5.3),
* logged Unordered set: a client's write survives even if its replica
  crashes immediately after accepting it (Section 5.4).

Run:  python examples/replicated_kv_store.py
"""

from repro import AlternativeConfig, ClusterConfig, NetworkConfig
from repro.apps import KeyValueStore
from repro.harness import Cluster, verify_run


def main() -> None:
    cluster = Cluster(ClusterConfig(
        n=3, seed=7, protocol="alternative",
        network=NetworkConfig(loss_rate=0.05),
        app_factory=KeyValueStore,
        alt=AlternativeConfig(checkpoint_interval=2.0, delta=2,
                              log_unordered=True)))
    cluster.start()

    # Phase 1: normal operation — writes from every replica.
    for index in range(10):
        cluster.sim.schedule(0.5 + 0.2 * index, cluster.submit,
                             index % 3, ("put", f"user:{index}", index))

    # Phase 2: replica 2 crashes; a burst of writes happens without it.
    cluster.sim.schedule(3.0, cluster.crash, 2)
    for index in range(30):
        cluster.sim.schedule(3.5 + 0.1 * index, cluster.submit,
                             index % 2, ("put", f"burst:{index}", index))
    # Order-sensitive append: replicas diverge instantly if they disagree.
    for index in range(5):
        cluster.sim.schedule(7.0 + 0.1 * index, cluster.submit,
                             0, ("append", "audit-log", f"entry-{index}"))

    # Phase 3: replica 2 returns and catches up (state transfer).
    cluster.sim.schedule(9.0, cluster.recover, 2)

    cluster.run(until=30.0)
    assert cluster.settle(limit=200.0)
    verify_run(cluster)

    print("Replica states after crash, burst and recovery:")
    for replica in range(3):
        store = cluster.app(replica)
        print(f"  replica {replica}: {len(store)} keys, "
              f"version {store.version}, "
              f"audit-log = {store.get('audit-log')}")
    assert cluster.app(0).data == cluster.app(1).data == \
        cluster.app(2).data
    print("\nAll replicas identical.")

    late = cluster.abcasts[2]
    print(f"\nHow replica 2 caught up (Section 5.3):")
    print(f"  state transfers adopted : {late.state_transfers_adopted}")
    print(f"  consensus rounds skipped: {late.rounds_skipped}")
    print(f"  rounds replayed locally : {late.replayed_rounds}")

    ab0 = cluster.abcasts[0]
    print(f"\nLog-size control (Section 5.2):")
    print(f"  messages delivered      : {ab0.delivered_count()}")
    print(f"  held as explicit suffix : {len(ab0.agreed.sequence())}")
    print(f"  absorbed into A-ckpt    : {ab0.agreed.checkpointed_count}")
    print(f"  stable-storage residency: "
          f"{cluster.nodes[0].storage.total_bytes_stored()} bytes "
          f"(bounded, does not grow with history)")


if __name__ == "__main__":
    main()
