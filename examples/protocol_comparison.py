#!/usr/bin/env python3
"""Side-by-side comparison of every total-order protocol in the library.

Runs the same workload over all five protocol stacks — the paper's two
protocols, the eager-logging strawman, the Chandra-Toueg crash-stop
transformation and the fixed-sequencer baseline — and prints one row per
protocol: deliveries, rounds, latency, durable writes, network traffic.

The failure-free run makes the cost *structure* visible:

* consensus-based protocols pay round-trips for fault tolerance, the
  sequencer pays nothing (and tolerates nothing);
* the basic protocol's durable writes are exactly its consensus's;
* eager logging multiplies writes for the same behaviour;
* the crash-stop baseline writes nothing at all.

Run:  python examples/protocol_comparison.py
"""

from repro import ClusterConfig, NetworkConfig
from repro.harness import Scenario, print_table, run_scenario
from repro.workloads import PoissonWorkload

PROTOCOLS = ("basic", "alternative", "eager", "ct", "sequencer")


def run_one(protocol: str):
    return run_scenario(Scenario(
        cluster=ClusterConfig(
            n=3, seed=123, protocol=protocol,
            network=NetworkConfig(loss_rate=0.0)),
        workload=PoissonWorkload(rate_per_node=3.0, duration=10.0,
                                 seed=123),
        duration=14.0, settle_limit=120.0))


def main() -> None:
    rows = []
    for protocol in PROTOCOLS:
        result = run_one(protocol)
        metrics = result.metrics
        latency = metrics.latency_summary()
        rows.append([
            protocol,
            metrics.messages_delivered,
            result.report.rounds if protocol != "sequencer" else "-",
            round(latency["p50"], 3),
            round(latency["p95"], 3),
            metrics.total_log_ops(),
            metrics.network["sent"],
        ])
    print_table(
        "Same workload (90 msgs, 3 nodes, reliable network), "
        "five protocols",
        ["protocol", "delivered", "rounds", "lat p50", "lat p95",
         "log ops", "msgs sent"],
        rows,
        note="every run passed full property verification; 'sequencer' "
             "is fast but tolerates no faults at all")


if __name__ == "__main__":
    main()
