#!/usr/bin/env python3
"""Replicated bank under continuous random crash-recovery.

Order sensitivity made concrete: a transfer succeeds only if the source
account has funds *at the moment the command is applied*, so replicas
that disagreed on ordering would disagree on which transfers succeeded
— and money would appear or vanish.  This example hammers a 5-replica
bank with random crashes and recoveries (every node fails at least
conceptually; one node is a paper-style *bad* process that keeps
oscillating) and then audits the books.

Run:  python examples/replicated_bank.py
"""

from repro import (AlternativeConfig, ClusterConfig, NetworkConfig,
                   RandomFaults)
from repro.apps import Bank
from repro.harness import Cluster, verify_run
from repro.workloads import ScheduledWorkload


def main() -> None:
    cluster = Cluster(ClusterConfig(
        n=5, seed=99, protocol="alternative",
        network=NetworkConfig(loss_rate=0.05),
        app_factory=Bank,
        alt=AlternativeConfig(checkpoint_interval=2.0, delta=3,
                              log_unordered=True)))
    cluster.start()

    # Accounts, then a storm of transfers from every replica.
    plan = [(0.5, 0, ("open", "alice", 1000)),
            (0.6, 1, ("open", "bob", 1000)),
            (0.7, 2, ("open", "carol", 1000))]
    accounts = ("alice", "bob", "carol")
    for index in range(60):
        src = accounts[index % 3]
        dst = accounts[(index + 1) % 3]
        plan.append((1.0 + 0.2 * index, index % 5,
                     ("transfer", src, dst, 50 + 10 * (index % 7))))
    ScheduledWorkload(plan).install(cluster)

    # Chaos: random crash-recovery, node 4 keeps oscillating forever.
    RandomFaults(mttf=6.0, mttr=1.5, stabilize_at=16.0, seed=99,
                 bad_nodes=[4]).install(cluster.sim, cluster.nodes)

    cluster.run(until=30.0)
    assert cluster.settle(limit=300.0)
    verify_run(cluster, good_nodes=[0, 1, 2, 3])

    print("Crash/recovery chaos survived:")
    for node_id, node in cluster.nodes.items():
        tag = " (bad: oscillates forever)" if node_id == 4 else ""
        print(f"  replica {node_id}: {node.crash_count} crashes, "
              f"{node.recovery_count} recoveries{tag}")

    print("\nThe books, per good replica:")
    for replica in (0, 1, 2, 3):
        bank = cluster.app(replica)
        print(f"  replica {replica}: balances={bank.balances}  "
              f"rejected={bank.rejected}")

    banks = [cluster.app(i) for i in (0, 1, 2, 3)]
    assert all(b.balances == banks[0].balances for b in banks)
    assert all(b.rejected == banks[0].rejected for b in banks)
    opened = sum(
        payload[2]
        for mid, payload in cluster.collector.broadcast_payloads.items()
        if payload[0] == "open"
        and mid in cluster.collector.first_delivery)
    assert banks[0].total() == opened
    print(f"\nAudit: identical balances on every good replica; "
          f"{banks[0].total()} == {opened} deposited — money conserved "
          f"through {sum(n.crash_count for n in cluster.nodes.values())} "
          f"crashes.")


if __name__ == "__main__":
    main()
