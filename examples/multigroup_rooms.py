#!/usr/bin/env python3
"""Total order multicast to multiple groups (Section 6.4 extension).

A small "chat service" with two rooms whose memberships overlap on one
bridge server.  Room-local messages are totally ordered within their
room; *announcements* addressed to both rooms must appear at the same
relative position in both rooms' histories — the multi-group total order
problem the paper points to in Section 6.4, solved here with a
timestamp-agreement protocol layered on one crash-recovery Atomic
Broadcast instance per room.

The bridge server crashes mid-run and recovers; the invariants hold
throughout.

Run:  python examples/multigroup_rooms.py
"""

from repro.multigroup import MultiGroupCluster
from repro.transport import NetworkConfig


def main() -> None:
    cluster = MultiGroupCluster(
        {"room-a": [0, 1, 2], "room-b": [2, 3, 4]},  # node 2 bridges
        seed=17, network=NetworkConfig(loss_rate=0.05))
    cluster.start()

    # Room-local chatter plus cross-room announcements.
    for index in range(5):
        cluster.sim.schedule(0.5 + 0.4 * index, cluster.multicast,
                             0, f"a-chat-{index}", ["room-a"])
        cluster.sim.schedule(0.6 + 0.4 * index, cluster.multicast,
                             3, f"b-chat-{index}", ["room-b"])
    for index in range(3):
        cluster.sim.schedule(0.8 + 0.8 * index, cluster.multicast,
                             2, f"ANNOUNCE-{index}", ["room-a", "room-b"])

    # The bridge crashes and recovers mid-run.
    cluster.sim.schedule(3.0, cluster.nodes[2].crash)
    cluster.sim.schedule(6.0, cluster.nodes[2].recover)

    cluster.run(until=80.0)

    for room in ("room-a", "room-b"):
        cluster.check_group_agreement(room)
    cluster.check_pairwise_total_order()

    print("Room histories (every member of a room sees the same one):")
    for room in ("room-a", "room-b"):
        member = cluster.members_of(room)[0]
        history = [payload for _, payload
                   in cluster.layers[member].delivered_in(room)]
        print(f"  {room}: {history}")

    history_a = [payload for _, payload
                 in cluster.layers[0].delivered_in("room-a")]
    history_b = [payload for _, payload
                 in cluster.layers[3].delivered_in("room-b")]
    announcements_a = [p for p in history_a if p.startswith("ANNOUNCE")]
    announcements_b = [p for p in history_b if p.startswith("ANNOUNCE")]
    assert announcements_a == announcements_b
    print(f"\nAnnouncements appear in the same order in both rooms: "
          f"{announcements_a}")
    print("Pairwise total order held across the bridge's crash and "
          "recovery.")


if __name__ == "__main__":
    main()
