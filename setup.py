"""Legacy setup shim (the environment's setuptools lacks PEP 660 editable
support without the `wheel` package; metadata lives in pyproject.toml)."""
from setuptools import setup

setup()
